//! In-coordinator shuffle store: completed map outputs, indexed by
//! (partition, map task), handed to reduce-serving threads as each map
//! task lands — under a configurable in-memory byte budget, with
//! overflow spilled to per-partition disk files.
//!
//! The store preserves the engine's canonical segment order — for a
//! partition, segments are always consumed in map-task-id order — so a
//! reducer fetched over the wire sees byte-for-byte the same segment
//! sequence as the local thread-pool path builds in memory. That is
//! what lets per-index wire corruption from a [`crate::fault`] plan hit
//! the same bytes in both runtimes. Whether a segment is resident or
//! spilled is invisible on the wire: placement changes *where* bytes
//! live, never *which* bytes are served.
//!
//! # Memory budget and spill format
//!
//! `publish` admits each segment to memory while the resident total
//! stays within the budget; crossing the watermark evicts resident
//! segments — least-recently-touched first, preferring partitions **no
//! reducer is actively fetching** (an active fetcher is about to need
//! its partition's segments, so they stay hot) — to an append-only
//! spill file per partition. A segment larger than the whole budget
//! spills directly. The spill file is raw segment bytes back to back;
//! the in-memory slot keeps the `(offset, len, crc)` index entry, and
//! every spill-file read re-verifies the CRC-32C recorded at spill
//! time, so silent disk corruption fails loudly instead of reducing
//! over garbage. Replaced slots (a republished map attempt) leave dead
//! bytes behind in the file — the files are job-scoped temporaries,
//! removed when the store drops, so reclaiming holes is not worth a
//! compaction pass.
//!
//! Fetch paths never re-buffer a spilled segment through an
//! intermediate `Vec`: [`SpilledHandle::read_range`] `pread`s straight
//! into whatever buffer the caller is assembling (the coordinator
//! points it at the payload region of a wire frame). Spilled segments
//! are *not* promoted back to memory on read — a fetch is the last
//! time the coordinator touches those bytes, so promoting them would
//! evict segments that still have a first fetch ahead of them.
//!
//! Segments are retained until the job ends (not freed after a first
//! fetch) so a retried reduce attempt can re-fetch the same bytes; for
//! spilled segments the handle stays valid across eviction and
//! republish because spill files are append-only.
//!
//! # Wire/spill compression
//!
//! With [`WireCodec::Lz`] each segment is compressed **once, at
//! publish**, outside the store lock; what the store admits, budgets,
//! evicts, spills, and serves afterwards is the compressed frame —
//! spill disk, resident memory, and the wire all see the small bytes,
//! and the zero-copy `pread`-into-frame serving path is untouched. A
//! segment the codec cannot shrink is stored raw (`comp == false`), so
//! compression never inflates a segment. Logical (uncompressed)
//! lengths are tracked per slot: [`ShuffleStore::total_bytes`] stays
//! the *logical* shuffle volume, preserving the
//! `ShuffleBytes == MapOutputMaterializedBytes` ledger invariant
//! regardless of codec.

use super::WireCodec;
use crate::error::MrError;
use scihadoop_compress::checksum::crc32c;
use scihadoop_compress::lz;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Distinguishes concurrently live stores within one process (one test
/// binary runs many coordinators).
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Fallback in-memory budget when `/proc/meminfo` is unavailable.
const FALLBACK_MEM_BUDGET: usize = 256 << 20;

/// Default in-memory budget, sized from the machine: a quarter of
/// `MemAvailable`, falling back to 256 MiB where that cannot be read.
/// The budget only decides segment *placement*, never the bytes served,
/// so an approximate default is safe.
pub fn auto_shuffle_mem_bytes() -> usize {
    let Ok(meminfo) = std::fs::read_to_string("/proc/meminfo") else {
        return FALLBACK_MEM_BUDGET;
    };
    for line in meminfo.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            if kib > 0 {
                return usize::try_from((kib << 10) / 4).unwrap_or(FALLBACK_MEM_BUDGET);
            }
        }
    }
    FALLBACK_MEM_BUDGET
}

fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        // Positioned reads via the shared cursor; the distributed
        // runtime is unix-first (no UDS elsewhere either) and this path
        // only keeps the crate compiling.
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// One partition's append-only spill file. All writes happen under the
/// store lock, so the tracked length is the authoritative append
/// offset; reads are positioned (`pread`) and take no lock at all.
struct SpillFile {
    file: Arc<File>,
    path: PathBuf,
    len: u64,
}

impl SpillFile {
    fn create(partition: usize) -> Result<SpillFile, MrError> {
        let path = std::env::temp_dir().join(format!(
            "scihadoop-spill-{}-{}-p{partition}.dat",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::OpenOptions::new()
            .append(true)
            .read(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| MrError::Net(format!("create shuffle spill file {path:?}: {e}")))?;
        Ok(SpillFile {
            file: Arc::new(file),
            path,
            len: 0,
        })
    }

    fn append(&mut self, data: &[u8]) -> Result<u64, MrError> {
        let offset = self.len;
        (&*self.file).write_all(data).map_err(|e| {
            MrError::Net(format!("shuffle spill write ({} bytes): {e}", data.len()))
        })?;
        self.len += data.len() as u64;
        Ok(offset)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Where one (partition, map task) segment currently lives. `comp`
/// marks stored bytes as an lz frame; `logical_len` is the segment's
/// uncompressed length (equal to the stored length when raw). Budgets
/// and spill accounting run on stored bytes, job-level `ShuffleBytes`
/// on logical bytes.
enum Slot {
    /// No data: not yet published, or the map task emitted nothing for
    /// this partition.
    Empty,
    /// Resident. `touch` is the LRU clock value of the last access.
    Mem {
        data: Arc<Vec<u8>>,
        crc: u32,
        touch: u64,
        comp: bool,
        logical_len: usize,
    },
    /// Spilled to the partition's file at `offset`.
    Spilled {
        offset: u64,
        len: usize,
        crc: u32,
        comp: bool,
        logical_len: usize,
    },
}

impl Slot {
    fn logical_len(&self) -> Option<usize> {
        match self {
            Slot::Empty => None,
            Slot::Mem { logical_len, .. } | Slot::Spilled { logical_len, .. } => Some(*logical_len),
        }
    }
}

struct StoreState {
    /// `slots[partition][map_task]`.
    slots: Vec<Vec<Slot>>,
    /// Whether each map task's outputs have been committed.
    done: Vec<bool>,
    aborted: bool,
    /// Per-partition spill files, created on first spill.
    spill: Vec<Option<SpillFile>>,
    /// Per-partition count of reduce serves currently fetching; their
    /// segments are evicted last.
    active_fetchers: Vec<usize>,
    /// Resident segment bytes right now. Never exceeds `mem_budget`.
    mem_used: usize,
    /// LRU clock, bumped on every admit/touch.
    clock: u64,
    mem_high_water: u64,
    spilled_bytes: u64,
    spill_reads: u64,
    /// Spill-file bytes orphaned by republish-after-death: the retried
    /// attempt repoints the slot, the predecessor's bytes stay in the
    /// append-only file (`ShuffleSpillDeadBytes`).
    spill_dead_bytes: u64,
    /// Time spent in publish-side wire-codec compression
    /// (`LzCompressNanos`; 0 under identity).
    compress_nanos: u64,
}

impl StoreState {
    fn touch_next(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evict resident segments until `extra` more bytes fit in the
    /// budget. Victims are least-recently-touched first among
    /// partitions with no active fetcher, then (only if that is not
    /// enough) among actively fetched partitions too.
    fn make_room(&mut self, extra: usize, budget: usize) -> Result<(), MrError> {
        while self.mem_used + extra > budget {
            let mut victim: Option<(usize, usize, bool, u64)> = None;
            for (p, row) in self.slots.iter().enumerate() {
                let active = self.active_fetchers[p] > 0;
                for (m, slot) in row.iter().enumerate() {
                    if let Slot::Mem { touch, .. } = slot {
                        let better = match &victim {
                            None => true,
                            Some((_, _, v_active, v_touch)) => {
                                (active, *touch) < (*v_active, *v_touch)
                            }
                        };
                        if better {
                            victim = Some((p, m, active, *touch));
                        }
                    }
                }
            }
            let Some((p, m, _, _)) = victim else {
                // Nothing resident left to evict; the caller only asks
                // for room a full eviction can provide.
                return Ok(());
            };
            self.spill_slot(p, m)?;
        }
        Ok(())
    }

    /// Append `data` to `partition`'s spill file (created on first
    /// use) and return the index entry for it.
    fn spill_bytes(
        &mut self,
        partition: usize,
        data: &[u8],
        crc: u32,
        comp: bool,
        logical_len: usize,
    ) -> Result<Slot, MrError> {
        if self.spill[partition].is_none() {
            self.spill[partition] = Some(SpillFile::create(partition)?);
        }
        let file = self.spill[partition].as_mut().expect("just created");
        let offset = file.append(data)?;
        self.spilled_bytes += data.len() as u64;
        Ok(Slot::Spilled {
            offset,
            len: data.len(),
            crc,
            comp,
            logical_len,
        })
    }

    /// Move one resident slot to its partition's spill file.
    fn spill_slot(&mut self, partition: usize, map_task: usize) -> Result<(), MrError> {
        let Slot::Mem {
            data,
            crc,
            comp,
            logical_len,
            ..
        } = &self.slots[partition][map_task]
        else {
            return Ok(());
        };
        let (data, crc, comp, logical_len) = (Arc::clone(data), *crc, *comp, *logical_len);
        let slot = self.spill_bytes(partition, &data, crc, comp, logical_len)?;
        self.mem_used -= data.len();
        self.slots[partition][map_task] = slot;
        Ok(())
    }
}

/// Shared shuffle state between the coordinator's connection threads.
/// Public so the bench harness and spill-equivalence tests can drive
/// the store directly; the engine constructs it internally.
pub struct ShuffleStore {
    state: Mutex<StoreState>,
    ready: Condvar,
    mem_budget: usize,
    codec: WireCodec,
}

impl ShuffleStore {
    /// A store for `num_partitions × num_maps` segments holding at most
    /// `mem_budget` resident bytes (0 spills everything, `usize::MAX`
    /// never spills). Stores raw segment bytes; see
    /// [`ShuffleStore::new_with_codec`].
    pub fn new(num_partitions: usize, num_maps: usize, mem_budget: usize) -> ShuffleStore {
        ShuffleStore::new_with_codec(num_partitions, num_maps, mem_budget, WireCodec::Identity)
    }

    /// A store that compresses segments at publish with `codec` —
    /// resident memory, spill files, and served bytes all hold the
    /// compressed frames.
    pub fn new_with_codec(
        num_partitions: usize,
        num_maps: usize,
        mem_budget: usize,
        codec: WireCodec,
    ) -> ShuffleStore {
        ShuffleStore {
            state: Mutex::new(StoreState {
                slots: (0..num_partitions)
                    .map(|_| (0..num_maps).map(|_| Slot::Empty).collect())
                    .collect(),
                done: vec![false; num_maps],
                aborted: false,
                spill: (0..num_partitions).map(|_| None).collect(),
                active_fetchers: vec![0; num_partitions],
                mem_used: 0,
                clock: 0,
                mem_high_water: 0,
                spilled_bytes: 0,
                spill_reads: 0,
                spill_dead_bytes: 0,
                compress_nanos: 0,
            }),
            ready: Condvar::new(),
            mem_budget,
            codec,
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Commit one map task's segments atomically. Outputs arrive as
    /// `(partition, bytes)` pairs; the task is only marked done once
    /// all of them are stored, so a fetcher never observes a partial
    /// set. Republishing (a retried map attempt whose predecessor was
    /// counted failed) replaces the previous attempt's segments.
    /// Segments that do not fit the memory budget go straight to the
    /// partition's spill file.
    pub fn publish(&self, map_task: usize, outputs: Vec<(usize, Vec<u8>)>) -> Result<(), MrError> {
        // Compress outside the lock: publishers are concurrent map
        // connections, and codec CPU time must not serialize them.
        // A frame that fails to shrink its segment is discarded and the
        // raw bytes stored, so compression never inflates a segment.
        let mut compress_nanos = 0u64;
        let prepared: Vec<(usize, Vec<u8>, bool, usize)> = outputs
            .into_iter()
            .map(|(partition, data)| {
                let logical_len = data.len();
                if self.codec == WireCodec::Lz && !data.is_empty() {
                    let t0 = Instant::now();
                    let frame = lz::compress(&data);
                    compress_nanos += t0.elapsed().as_nanos() as u64;
                    if frame.len() < data.len() {
                        return (partition, frame, true, logical_len);
                    }
                }
                (partition, data, false, logical_len)
            })
            .collect();
        let mut guard = self.lock_state();
        let state = &mut *guard;
        state.compress_nanos += compress_nanos;
        for partition in 0..state.slots.len() {
            match &state.slots[partition][map_task] {
                Slot::Mem { data, .. } => state.mem_used -= data.len(),
                // The predecessor's spilled bytes stay behind in the
                // append-only file; account them as dead.
                Slot::Spilled { len, .. } => state.spill_dead_bytes += *len as u64,
                Slot::Empty => {}
            }
            state.slots[partition][map_task] = Slot::Empty;
        }
        for (partition, data, comp, logical_len) in prepared {
            let crc = crc32c(&data);
            if data.len() <= self.mem_budget {
                state.make_room(data.len(), self.mem_budget)?;
                state.mem_used += data.len();
                state.mem_high_water = state.mem_high_water.max(state.mem_used as u64);
                let touch = state.touch_next();
                state.slots[partition][map_task] = Slot::Mem {
                    data: Arc::new(data),
                    crc,
                    touch,
                    comp,
                    logical_len,
                };
            } else {
                state.slots[partition][map_task] =
                    state.spill_bytes(partition, &data, crc, comp, logical_len)?;
            }
        }
        state.done[map_task] = true;
        self.ready.notify_all();
        Ok(())
    }

    /// Block until `map_task`'s outputs are committed, then return a
    /// handle to its segment for `partition` (`None` if the task
    /// emitted nothing for that partition). Errors out if the job
    /// aborts while waiting. A returned handle stays valid across
    /// later evictions and republishes.
    pub fn segment_when_ready(
        &self,
        partition: usize,
        map_task: usize,
    ) -> Result<Option<SegmentHandle>, MrError> {
        let mut guard = self.lock_state();
        loop {
            let state = &mut *guard;
            if state.aborted {
                return Err(MrError::Net("job aborted while awaiting map output".into()));
            }
            if state.done[map_task] {
                let touch = state.touch_next();
                return Ok(match &mut state.slots[partition][map_task] {
                    Slot::Empty => None,
                    Slot::Mem {
                        data,
                        touch: t,
                        comp,
                        logical_len,
                        ..
                    } => {
                        *t = touch;
                        Some(SegmentHandle {
                            comp: *comp,
                            logical_len: *logical_len,
                            repr: SegmentRepr::Mem(Arc::clone(data)),
                        })
                    }
                    &mut Slot::Spilled {
                        offset,
                        len,
                        crc,
                        comp,
                        logical_len,
                    } => {
                        state.spill_reads += 1;
                        let file = Arc::clone(
                            &state.spill[partition]
                                .as_ref()
                                .expect("spilled slot has a spill file")
                                .file,
                        );
                        Some(SegmentHandle {
                            comp,
                            logical_len,
                            repr: SegmentRepr::Spilled(SpilledHandle {
                                file,
                                offset,
                                len,
                                crc,
                                partition,
                                map_task,
                            }),
                        })
                    }
                });
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Mark `partition` as actively fetched for the guard's lifetime;
    /// the eviction policy keeps its resident segments longest.
    pub fn fetch_guard(&self, partition: usize) -> FetchGuard<'_> {
        self.lock_state().active_fetchers[partition] += 1;
        FetchGuard {
            store: self,
            partition,
        }
    }

    /// Unblock all waiters with an error; called when the job fails.
    pub fn abort(&self) {
        self.lock_state().aborted = true;
        self.ready.notify_all();
    }

    /// Total *logical* (uncompressed) bytes across all committed
    /// segments, resident or spilled (the distributed run's
    /// `ShuffleBytes`). Independent of the wire codec, so the
    /// `ShuffleBytes == MapOutputMaterializedBytes` invariant holds
    /// compressed or not.
    pub fn total_bytes(&self) -> u64 {
        let state = self.lock_state();
        state
            .slots
            .iter()
            .flat_map(|row| row.iter())
            .filter_map(|slot| slot.logical_len())
            .map(|len| len as u64)
            .sum()
    }

    /// Bytes ever written to spill files (`ShuffleSpilledBytes`).
    pub fn spilled_bytes(&self) -> u64 {
        self.lock_state().spilled_bytes
    }

    /// Segment reads served from a spill file (`ShuffleSpillReads`).
    pub fn spill_reads(&self) -> u64 {
        self.lock_state().spill_reads
    }

    /// High-water mark of resident bytes (`ShuffleMemHighWater`).
    pub fn mem_high_water(&self) -> u64 {
        self.lock_state().mem_high_water
    }

    /// Spill-file bytes orphaned by republish (`ShuffleSpillDeadBytes`).
    pub fn spill_dead_bytes(&self) -> u64 {
        self.lock_state().spill_dead_bytes
    }

    /// Publish-side compression time (`LzCompressNanos`).
    pub fn compress_nanos(&self) -> u64 {
        self.lock_state().compress_nanos
    }
}

/// RAII marker for an in-progress reduce fetch of one partition.
pub struct FetchGuard<'a> {
    store: &'a ShuffleStore,
    partition: usize,
}

impl Drop for FetchGuard<'_> {
    fn drop(&mut self) {
        self.store.lock_state().active_fetchers[self.partition] -= 1;
    }
}

/// One fetched segment: its stored representation plus the codec
/// metadata a server needs to frame it on the wire. The handle outlives
/// any store mutation — `Mem` pins the bytes via `Arc`, `Spilled` reads
/// an append-only region of a file the handle keeps open.
pub struct SegmentHandle {
    /// Stored bytes are an lz frame the fetching worker must inflate.
    comp: bool,
    /// Uncompressed segment length; equals the stored length when raw.
    logical_len: usize,
    pub repr: SegmentRepr,
}

/// Where a fetched segment's *stored* bytes live.
pub enum SegmentRepr {
    Mem(Arc<Vec<u8>>),
    Spilled(SpilledHandle),
}

impl SegmentHandle {
    /// Stored length in bytes — what crosses the wire.
    pub fn len(&self) -> usize {
        match &self.repr {
            SegmentRepr::Mem(data) => data.len(),
            SegmentRepr::Spilled(h) => h.len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the stored bytes are an lz frame.
    pub fn is_comp(&self) -> bool {
        self.comp
    }

    /// Uncompressed segment length.
    pub fn logical_len(&self) -> usize {
        self.logical_len
    }

    /// Materialize the stored bytes (compressed, if the store codec
    /// shrank this segment). Spilled reads verify the spill-time CRC.
    pub fn to_vec(&self) -> Result<Vec<u8>, MrError> {
        match &self.repr {
            SegmentRepr::Mem(data) => Ok(data.as_ref().clone()),
            SegmentRepr::Spilled(h) => {
                let mut buf = vec![0u8; h.len];
                h.read_range(0, &mut buf)?;
                let got = crc32c(&buf);
                if got != h.crc {
                    return Err(h.crc_error(got));
                }
                Ok(buf)
            }
        }
    }

    /// Materialize the *logical* segment bytes, inflating a compressed
    /// store representation — the corruption-injection path needs the
    /// same bytes the local engine would corrupt, and tests compare
    /// against published inputs.
    pub fn logical_vec(&self) -> Result<Vec<u8>, MrError> {
        let stored = self.to_vec()?;
        if !self.comp {
            return Ok(stored);
        }
        let data = lz::decompress(&stored)
            .map_err(|e| MrError::Checksum(format!("shuffle store lz frame corrupt: {e}")))?;
        if data.len() != self.logical_len {
            return Err(MrError::Checksum(format!(
                "shuffle store lz frame inflated to {} bytes, slot says {}",
                data.len(),
                self.logical_len
            )));
        }
        Ok(data)
    }
}

/// Index entry plus file handle for one spilled segment.
pub struct SpilledHandle {
    file: Arc<File>,
    offset: u64,
    len: usize,
    crc: u32,
    partition: usize,
    map_task: usize,
}

impl SpilledHandle {
    /// Segment length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// CRC-32C of the whole segment, recorded at spill time. Chunked
    /// readers accumulate their own CRC across `read_range` calls and
    /// compare against this before releasing the final chunk.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// `pread` `buf.len()` bytes starting `seg_off` bytes into the
    /// segment, directly into the caller's buffer — the zero-copy hop
    /// from spill file to wire frame.
    pub fn read_range(&self, seg_off: usize, buf: &mut [u8]) -> Result<(), MrError> {
        debug_assert!(seg_off + buf.len() <= self.len);
        pread_exact(&self.file, buf, self.offset + seg_off as u64).map_err(|e| {
            MrError::Net(format!(
                "shuffle spill read (partition {}, map task {}, {} bytes at +{seg_off}): {e}",
                self.partition,
                self.map_task,
                buf.len()
            ))
        })
    }

    /// The error for a spill-file CRC mismatch observed on the way out.
    pub fn crc_error(&self, got: u32) -> MrError {
        MrError::Checksum(format!(
            "shuffle spill file corrupt: partition {} map task {} crc {got:#010x} != {:#010x}",
            self.partition, self.map_task, self.crc
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_all(store: &ShuffleStore, partition: usize, num_maps: usize) -> Vec<Vec<u8>> {
        let mut got = Vec::new();
        for task in 0..num_maps {
            if let Some(seg) = store.segment_when_ready(partition, task).unwrap() {
                got.push(seg.to_vec().unwrap());
            }
        }
        got
    }

    #[test]
    fn fetch_blocks_until_publish_and_preserves_task_order() {
        let store = Arc::new(ShuffleStore::new(2, 3, usize::MAX));
        let fetcher = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || fetch_all(&store, 1, 3))
        };
        // Publish out of order; the fetcher still consumes in task order.
        store.publish(1, vec![(1, b"one".to_vec())]).unwrap();
        store.publish(2, vec![(0, b"zero-only".to_vec())]).unwrap();
        store
            .publish(0, vec![(0, b"z".to_vec()), (1, b"nought".to_vec())])
            .unwrap();
        let got = fetcher.join().unwrap();
        assert_eq!(got, vec![b"nought".to_vec(), b"one".to_vec()]);
        assert_eq!(store.total_bytes(), 3 + 9 + 1 + 6);
        assert_eq!(store.spilled_bytes(), 0);
        assert_eq!(store.mem_high_water(), 3 + 9 + 1 + 6);
    }

    #[test]
    fn republish_replaces_a_failed_attempts_segments() {
        let store = ShuffleStore::new(1, 1, usize::MAX);
        store.publish(0, vec![(0, b"bad".to_vec())]).unwrap();
        store.publish(0, vec![(0, b"good".to_vec())]).unwrap();
        let seg = store.segment_when_ready(0, 0).unwrap().unwrap();
        assert_eq!(seg.to_vec().unwrap(), b"good");
        assert_eq!(store.total_bytes(), 4);
    }

    #[test]
    fn abort_wakes_blocked_fetchers_with_an_error() {
        let store = Arc::new(ShuffleStore::new(1, 1, usize::MAX));
        let fetcher = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.segment_when_ready(0, 0).map(|s| s.is_some()))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.abort();
        let err = fetcher.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("aborted"), "{err}");
    }

    #[test]
    fn zero_budget_spills_everything_and_serves_identical_bytes() {
        let bounded = ShuffleStore::new(2, 3, 0);
        let unbounded = ShuffleStore::new(2, 3, usize::MAX);
        let outputs = |task: usize| {
            vec![
                (0, vec![task as u8; 100]),
                (1, format!("seg-{task}").into_bytes()),
            ]
        };
        for task in 0..3 {
            bounded.publish(task, outputs(task)).unwrap();
            unbounded.publish(task, outputs(task)).unwrap();
        }
        for partition in 0..2 {
            assert_eq!(
                fetch_all(&bounded, partition, 3),
                fetch_all(&unbounded, partition, 3)
            );
        }
        assert_eq!(bounded.total_bytes(), unbounded.total_bytes());
        assert_eq!(bounded.spilled_bytes(), bounded.total_bytes());
        assert_eq!(bounded.mem_high_water(), 0);
        assert_eq!(bounded.spill_reads(), 6);
        assert_eq!(unbounded.spilled_bytes(), 0);
        assert_eq!(unbounded.spill_reads(), 0);
    }

    #[test]
    fn tight_budget_evicts_lru_but_keeps_active_partitions_resident() {
        // Budget fits two 10-byte segments. Partition 0 is being
        // actively fetched, so the eviction forced by publishing into
        // partition 1 must spill partition 1's own older segment, not
        // partition 0's.
        let store = ShuffleStore::new(2, 3, 20);
        let _guard = store.fetch_guard(0);
        store.publish(0, vec![(0, vec![b'a'; 10])]).unwrap();
        store.publish(1, vec![(1, vec![b'b'; 10])]).unwrap();
        store.publish(2, vec![(1, vec![b'c'; 10])]).unwrap();
        assert_eq!(store.spilled_bytes(), 10);
        let in_mem = |p: usize, m: usize| {
            matches!(
                store.segment_when_ready(p, m).unwrap().map(|h| h.repr),
                Some(SegmentRepr::Mem(_))
            )
        };
        assert!(in_mem(0, 0), "actively fetched partition stays resident");
        assert!(!in_mem(1, 1), "idle partition's oldest segment spilled");
        assert!(in_mem(1, 2));
        assert_eq!(store.mem_high_water(), 20);
        // The spilled segment still round-trips bit-exactly.
        let seg = store.segment_when_ready(1, 1).unwrap().unwrap();
        assert_eq!(seg.to_vec().unwrap(), vec![b'b'; 10]);
    }

    #[test]
    fn oversized_segment_spills_directly_without_evicting() {
        let store = ShuffleStore::new(1, 2, 16);
        store.publish(0, vec![(0, vec![1u8; 8])]).unwrap();
        store.publish(1, vec![(0, vec![2u8; 64])]).unwrap();
        assert_eq!(store.spilled_bytes(), 64);
        assert_eq!(store.mem_high_water(), 8);
        assert!(matches!(
            store.segment_when_ready(0, 0).unwrap().map(|h| h.repr),
            Some(SegmentRepr::Mem(_))
        ));
        let big = store.segment_when_ready(0, 1).unwrap().unwrap();
        assert_eq!(big.to_vec().unwrap(), vec![2u8; 64]);
    }

    #[test]
    fn spilled_handles_survive_republish() {
        let store = ShuffleStore::new(1, 1, 0);
        store.publish(0, vec![(0, b"first".to_vec())]).unwrap();
        let old = store.segment_when_ready(0, 0).unwrap().unwrap();
        store.publish(0, vec![(0, b"second".to_vec())]).unwrap();
        assert_eq!(old.to_vec().unwrap(), b"first");
        let new = store.segment_when_ready(0, 0).unwrap().unwrap();
        assert_eq!(new.to_vec().unwrap(), b"second");
    }

    #[test]
    fn lz_store_serves_logical_bytes_and_budgets_stored_bytes() {
        let raw = ShuffleStore::new(1, 2, usize::MAX);
        let lzs = ShuffleStore::new_with_codec(1, 2, usize::MAX, WireCodec::Lz);
        // Compressible segment and an incompressible one.
        let compressible: Vec<u8> = (0..4000u32).flat_map(|i| (i % 13).to_le_bytes()).collect();
        let mut x = 0x1234_5678_9abc_def0u64;
        let random: Vec<u8> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for store in [&raw, &lzs] {
            store.publish(0, vec![(0, compressible.clone())]).unwrap();
            store.publish(1, vec![(0, random.clone())]).unwrap();
        }
        // Logical volume is codec-independent.
        assert_eq!(lzs.total_bytes(), raw.total_bytes());
        assert!(lzs.compress_nanos() > 0);
        assert_eq!(raw.compress_nanos(), 0);

        let seg = lzs.segment_when_ready(0, 0).unwrap().unwrap();
        assert!(seg.is_comp(), "repetitive segment compresses");
        assert!(seg.len() < compressible.len(), "stored bytes shrank");
        assert_eq!(seg.logical_len(), compressible.len());
        assert_eq!(seg.logical_vec().unwrap(), compressible);
        // The stored bytes really are an lz frame.
        assert_eq!(
            lz::decompress(&seg.to_vec().unwrap()).unwrap(),
            compressible
        );

        let seg = lzs.segment_when_ready(0, 1).unwrap().unwrap();
        assert!(!seg.is_comp(), "incompressible segment stays raw");
        assert_eq!(seg.to_vec().unwrap(), random);
        assert_eq!(seg.logical_vec().unwrap(), random);
    }

    #[test]
    fn lz_store_spills_compressed_bytes_and_roundtrips() {
        let store = ShuffleStore::new_with_codec(1, 1, 0, WireCodec::Lz);
        let data: Vec<u8> = (0..5000u32).flat_map(|i| (i % 7).to_le_bytes()).collect();
        store.publish(0, vec![(0, data.clone())]).unwrap();
        // The spill file holds the compressed frame, not logical bytes.
        assert!(store.spilled_bytes() < data.len() as u64);
        assert_eq!(store.total_bytes(), data.len() as u64);
        let seg = store.segment_when_ready(0, 0).unwrap().unwrap();
        assert!(seg.is_comp());
        assert!(matches!(seg.repr, SegmentRepr::Spilled(_)));
        assert_eq!(seg.logical_vec().unwrap(), data);
    }

    #[test]
    fn republish_of_a_spilled_slot_counts_dead_bytes() {
        let store = ShuffleStore::new(1, 1, 0);
        store.publish(0, vec![(0, vec![7u8; 100])]).unwrap();
        assert_eq!(store.spill_dead_bytes(), 0);
        store.publish(0, vec![(0, vec![8u8; 60])]).unwrap();
        // The first attempt's 100 bytes are stranded in the file.
        assert_eq!(store.spill_dead_bytes(), 100);
        assert_eq!(store.spilled_bytes(), 160);
        // Live logical volume reflects only the committed attempt.
        assert_eq!(store.total_bytes(), 60);
        // Replacing a *resident* slot strands nothing on disk.
        let mem = ShuffleStore::new(1, 1, usize::MAX);
        mem.publish(0, vec![(0, vec![1u8; 50])]).unwrap();
        mem.publish(0, vec![(0, vec![2u8; 50])]).unwrap();
        assert_eq!(mem.spill_dead_bytes(), 0);
    }

    #[test]
    fn chunked_spill_reads_match_whole_segment_reads() {
        let store = ShuffleStore::new(1, 1, 0);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        store.publish(0, vec![(0, data.clone())]).unwrap();
        let Some(SegmentHandle {
            repr: SegmentRepr::Spilled(h),
            ..
        }) = store.segment_when_ready(0, 0).unwrap()
        else {
            panic!("budget 0 must spill");
        };
        let mut assembled = Vec::new();
        let mut crc = scihadoop_compress::checksum::Crc32c::new();
        let mut off = 0;
        while off < data.len() {
            let take = 64.min(data.len() - off);
            let mut buf = vec![0u8; take];
            h.read_range(off, &mut buf).unwrap();
            crc.update(&buf);
            assembled.extend_from_slice(&buf);
            off += take;
        }
        assert_eq!(assembled, data);
        assert_eq!(crc.finish(), h.crc());
    }
}

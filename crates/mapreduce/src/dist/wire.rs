//! Length-prefixed frame protocol between the coordinator's shuffle
//! service and worker processes.
//!
//! Every frame is `u32` little-endian payload length, then the payload:
//! one tag byte followed by the message body. All integers are
//! little-endian and all byte strings are `u32`-length-prefixed. The
//! protocol is strictly structural — no text, no negotiation — because
//! both ends are the *same binary* (workers are re-executions of the
//! coordinator's executable), so schema version skew cannot happen
//! within one job.
//!
//! Segment payloads cross the wire verbatim, CRC-32C trailer included;
//! the receiving worker re-verifies the trailer when it opens the
//! segment ([`crate::ifile::RawSegment::open`]), which is what lets the
//! fault plan's wire-level corruption be *detected* rather than
//! silently reduced over.

use crate::counters::{CounterSnapshot, Counters, ALL_COUNTERS, NUM_COUNTERS};
use crate::error::MrError;
use crate::record::{InputSplit, KvPair};
use std::io::{Read, Write};

/// Default upper bound on one frame's payload, overridable per
/// coordinator through [`crate::dist::DistConfig::max_frame_bytes`].
/// Frames carry at most one segment chunk, one input split, or one
/// reducer's output; anything larger is a corrupt length prefix, and
/// failing fast beats a giant allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 256 << 20;

/// `Hello.wire_caps` bit: this worker can decompress
/// [`scihadoop_compress::lz`] segment streams. Capability negotiation
/// is one-directional — workers advertise, the coordinator only sends
/// compressed `SegChunk` frames to workers that set the bit.
pub(crate) const CAP_LZ: u32 = 1 << 0;

/// Every message either side can send. See the module docs of
/// [`crate::dist`] for who sends what when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Msg {
    /// Worker → coordinator, once per connection. `wire_caps` is the
    /// worker's capability bitmap ([`CAP_LZ`]); unknown bits are
    /// ignored, so capability growth stays backward-compatible.
    Hello { worker: u32, wire_caps: u32 },
    /// Worker → coordinator: ready for the next task.
    TaskRequest,
    /// Coordinator → worker: run one map attempt over the carried split.
    /// `credits` is the worker's initial push window (segments it may
    /// send before blocking on a [`Msg::Credit`]).
    MapTask {
        task: u32,
        attempt: u32,
        credits: u32,
        split: InputSplit,
    },
    /// Worker → coordinator: one finished map-output segment. Consumes
    /// one push credit.
    MapSegment { partition: u32, data: Vec<u8> },
    /// Worker → coordinator: the map attempt succeeded. `local` is the
    /// attempt-local counter bank (absorbed only now, preserving the
    /// retry-counter semantics), `harness` the fault-injection charges.
    MapDone {
        task: u32,
        attempt: u32,
        local: CounterSnapshot,
        harness: CounterSnapshot,
    },
    /// Coordinator → worker: run one reduce attempt.
    ReduceTask { task: u32, attempt: u32 },
    /// Worker → coordinator: the reduce attempt passed its fault gate;
    /// stream this partition's segments, starting with `credits` chunks
    /// of window.
    FetchStart { credits: u32 },
    /// Coordinator → worker: one chunk of segment `index` (canonical
    /// map-task order). Consumes one fetch credit; `last` closes the
    /// segment. `comp` marks the *segment* (not the chunk) as an lz
    /// frame the worker must decompress after reassembly; `orig_len` is
    /// the segment's uncompressed length (0 when `comp` is false), a
    /// pre-allocation hint and a cross-check against the lz frame's own
    /// header. The lz frame carries a CRC over the wire bytes, so
    /// corruption of a compressed stream is caught before inflation.
    SegChunk {
        index: u32,
        last: bool,
        comp: bool,
        orig_len: u32,
        data: Vec<u8>,
    },
    /// Coordinator → worker: the fetch stream is complete; `count`
    /// segments were sent.
    SegmentsDone { count: u32 },
    /// Either direction: replenish one backpressure credit.
    Credit,
    /// Worker → coordinator: the reduce attempt succeeded.
    ReduceDone {
        task: u32,
        attempt: u32,
        local: CounterSnapshot,
        harness: CounterSnapshot,
        outputs: Vec<KvPair>,
    },
    /// Worker → coordinator: a task attempt failed. `checksum` carries
    /// [`MrError::is_checksum`] across the process boundary so the
    /// coordinator counts detected corruption exactly like the local
    /// runner; the structured error collapses to its display string.
    TaskFailed {
        task: u32,
        attempt: u32,
        reduce: bool,
        checksum: bool,
        error: String,
        harness: CounterSnapshot,
    },
    /// Coordinator → worker: no more work (job complete or aborted).
    Shutdown,
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 1,
            Msg::TaskRequest => 2,
            Msg::MapTask { .. } => 3,
            Msg::MapSegment { .. } => 4,
            Msg::MapDone { .. } => 5,
            Msg::ReduceTask { .. } => 6,
            Msg::FetchStart { .. } => 7,
            Msg::SegChunk { .. } => 8,
            Msg::SegmentsDone { .. } => 9,
            Msg::Credit => 10,
            Msg::ReduceDone { .. } => 11,
            Msg::TaskFailed { .. } => 12,
            Msg::Shutdown => 13,
        }
    }

    /// Short name for protocol-violation errors.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "Hello",
            Msg::TaskRequest => "TaskRequest",
            Msg::MapTask { .. } => "MapTask",
            Msg::MapSegment { .. } => "MapSegment",
            Msg::MapDone { .. } => "MapDone",
            Msg::ReduceTask { .. } => "ReduceTask",
            Msg::FetchStart { .. } => "FetchStart",
            Msg::SegChunk { .. } => "SegChunk",
            Msg::SegmentsDone { .. } => "SegmentsDone",
            Msg::Credit => "Credit",
            Msg::ReduceDone { .. } => "ReduceDone",
            Msg::TaskFailed { .. } => "TaskFailed",
            Msg::Shutdown => "Shutdown",
        }
    }

    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Hello { worker, wire_caps } => {
                put_u32(buf, *worker);
                put_u32(buf, *wire_caps);
            }
            Msg::TaskRequest | Msg::Credit | Msg::Shutdown => {}
            Msg::MapTask {
                task,
                attempt,
                credits,
                split,
            } => {
                put_u32(buf, *task);
                put_u32(buf, *attempt);
                put_u32(buf, *credits);
                put_split(buf, split);
            }
            Msg::MapSegment { partition, data } => {
                put_u32(buf, *partition);
                put_bytes(buf, data);
            }
            Msg::MapDone {
                task,
                attempt,
                local,
                harness,
            } => {
                put_u32(buf, *task);
                put_u32(buf, *attempt);
                put_counters(buf, local);
                put_counters(buf, harness);
            }
            Msg::ReduceTask { task, attempt } => {
                put_u32(buf, *task);
                put_u32(buf, *attempt);
            }
            Msg::FetchStart { credits } => put_u32(buf, *credits),
            Msg::SegChunk {
                index,
                last,
                comp,
                orig_len,
                data,
            } => {
                put_u32(buf, *index);
                buf.push(u8::from(*last));
                buf.push(u8::from(*comp));
                put_u32(buf, *orig_len);
                put_bytes(buf, data);
            }
            Msg::SegmentsDone { count } => put_u32(buf, *count),
            Msg::ReduceDone {
                task,
                attempt,
                local,
                harness,
                outputs,
            } => {
                put_u32(buf, *task);
                put_u32(buf, *attempt);
                put_counters(buf, local);
                put_counters(buf, harness);
                put_pairs(buf, outputs);
            }
            Msg::TaskFailed {
                task,
                attempt,
                reduce,
                checksum,
                error,
                harness,
            } => {
                put_u32(buf, *task);
                put_u32(buf, *attempt);
                buf.push(u8::from(*reduce));
                buf.push(u8::from(*checksum));
                put_bytes(buf, error.as_bytes());
                put_counters(buf, harness);
            }
        }
    }

    fn decode(payload: &[u8]) -> Result<Msg, MrError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let msg = match tag {
            1 => Msg::Hello {
                worker: r.u32()?,
                wire_caps: r.u32()?,
            },
            2 => Msg::TaskRequest,
            3 => Msg::MapTask {
                task: r.u32()?,
                attempt: r.u32()?,
                credits: r.u32()?,
                split: r.split()?,
            },
            4 => Msg::MapSegment {
                partition: r.u32()?,
                data: r.bytes()?,
            },
            5 => Msg::MapDone {
                task: r.u32()?,
                attempt: r.u32()?,
                local: r.counters()?,
                harness: r.counters()?,
            },
            6 => Msg::ReduceTask {
                task: r.u32()?,
                attempt: r.u32()?,
            },
            7 => Msg::FetchStart { credits: r.u32()? },
            8 => Msg::SegChunk {
                index: r.u32()?,
                last: r.u8()? != 0,
                comp: r.u8()? != 0,
                orig_len: r.u32()?,
                data: r.bytes()?,
            },
            9 => Msg::SegmentsDone { count: r.u32()? },
            10 => Msg::Credit,
            11 => Msg::ReduceDone {
                task: r.u32()?,
                attempt: r.u32()?,
                local: r.counters()?,
                harness: r.counters()?,
                outputs: r.pairs()?,
            },
            12 => Msg::TaskFailed {
                task: r.u32()?,
                attempt: r.u32()?,
                reduce: r.u8()? != 0,
                checksum: r.u8()? != 0,
                error: String::from_utf8_lossy(&r.bytes()?).into_owned(),
                harness: r.counters()?,
            },
            13 => Msg::Shutdown,
            other => {
                return Err(MrError::Net(format!("unknown wire message tag {other}")));
            }
        };
        r.finish(msg.name())?;
        Ok(msg)
    }
}

/// Write one frame under the default cap. The length prefix and payload
/// go down in a single `write_all` so a frame is one contiguous write
/// into the socket buffer.
pub(crate) fn write_msg(w: &mut impl Write, msg: &Msg) -> Result<(), MrError> {
    write_msg_capped(w, msg, DEFAULT_MAX_FRAME_BYTES)
}

/// Write one frame, rejecting payloads over `cap` bytes.
pub(crate) fn write_msg_capped(w: &mut impl Write, msg: &Msg, cap: usize) -> Result<(), MrError> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&[0u8; 4]);
    buf.push(msg.tag());
    msg.encode_body(&mut buf);
    let len = buf.len() - 4;
    if len > cap {
        return Err(MrError::Net(format!(
            "outgoing {} frame of {len} bytes exceeds the {cap}-byte cap",
            msg.name()
        )));
    }
    buf[..4].copy_from_slice(&(len as u32).to_le_bytes());
    w.write_all(&buf)
        .map_err(|e| MrError::Net(format!("write {}: {e}", msg.name())))
}

/// Encode a `SegChunk` frame into `buf` (cleared first), letting `fill`
/// write the payload bytes directly into the frame's data region — the
/// zero-copy serving path: a spilled segment is `pread` straight into
/// the wire frame with no intermediate `Vec`. The produced bytes are
/// identical to `write_msg(&Msg::SegChunk { .. })` for the same data
/// (pinned by a unit test); the caller owns the `write_all`, so frame
/// buffers can be reused and double-buffered across chunks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_seg_chunk(
    buf: &mut Vec<u8>,
    index: u32,
    last: bool,
    comp: bool,
    orig_len: u32,
    payload_len: usize,
    cap: usize,
    fill: impl FnOnce(&mut [u8]) -> Result<(), MrError>,
) -> Result<(), MrError> {
    // Frame payload: tag + index + last + comp + orig_len + data length
    // + data.
    let frame_len = 1 + 4 + 1 + 1 + 4 + 4 + payload_len;
    if frame_len > cap {
        return Err(MrError::Net(format!(
            "outgoing SegChunk frame of {frame_len} bytes exceeds the {cap}-byte cap"
        )));
    }
    buf.clear();
    buf.extend_from_slice(&[0u8; 4]);
    buf.push(8); // SegChunk tag
    put_u32(buf, index);
    buf.push(u8::from(last));
    buf.push(u8::from(comp));
    put_u32(buf, orig_len);
    put_u32(buf, payload_len as u32);
    let data_at = buf.len();
    buf.resize(data_at + payload_len, 0);
    fill(&mut buf[data_at..])?;
    buf[..4].copy_from_slice(&(frame_len as u32).to_le_bytes());
    Ok(())
}

/// Read one frame under the default cap. A clean EOF before the length
/// prefix reads as a closed connection; anything else short is a
/// protocol error.
pub(crate) fn read_msg(r: &mut impl Read) -> Result<Msg, MrError> {
    read_msg_capped(r, DEFAULT_MAX_FRAME_BYTES)
}

/// Read one frame, rejecting length prefixes over `cap` bytes.
pub(crate) fn read_msg_capped(r: &mut impl Read, cap: usize) -> Result<Msg, MrError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)
        .map_err(|e| MrError::Net(format!("read frame length: {e}")))?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > cap {
        return Err(MrError::Net(format!(
            "frame length {len} outside (0, {cap}]"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| MrError::Net(format!("read frame payload ({len} bytes): {e}")))?;
    Msg::decode(&payload)
}

/// Read one frame and require it to be exactly `expected` (by tag
/// family), mapping anything else to a protocol error.
pub(crate) fn expect_credit(r: &mut impl Read) -> Result<(), MrError> {
    match read_msg(r)? {
        Msg::Credit => Ok(()),
        other => Err(MrError::Net(format!(
            "expected Credit, got {}",
            other.name()
        ))),
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_split(buf: &mut Vec<u8>, split: &InputSplit) {
    put_u32(buf, split.records.len() as u32);
    for rec in &split.records {
        put_bytes(buf, &rec.key);
        put_bytes(buf, &rec.value);
    }
}

fn put_pairs(buf: &mut Vec<u8>, pairs: &[KvPair]) {
    put_u32(buf, pairs.len() as u32);
    for pair in pairs {
        put_bytes(buf, &pair.key);
        put_bytes(buf, &pair.value);
    }
}

fn put_counters(buf: &mut Vec<u8>, snap: &CounterSnapshot) {
    put_u32(buf, NUM_COUNTERS as u32);
    for c in ALL_COUNTERS {
        put_u64(buf, snap.get(c));
    }
}

/// Bounds-checked cursor over one frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MrError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                MrError::Net(format!(
                    "frame underrun: need {n} bytes at offset {} of {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, MrError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, MrError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, MrError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, MrError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn split(&mut self) -> Result<InputSplit, MrError> {
        let n = self.u32()? as usize;
        let mut records = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let key = self.bytes()?;
            let value = self.bytes()?;
            records.push(KvPair { key, value });
        }
        Ok(InputSplit { records })
    }

    fn pairs(&mut self) -> Result<Vec<KvPair>, MrError> {
        Ok(self.split()?.records)
    }

    fn counters(&mut self) -> Result<CounterSnapshot, MrError> {
        let n = self.u32()? as usize;
        if n != NUM_COUNTERS {
            return Err(MrError::Net(format!(
                "counter bank of {n} slots, expected {NUM_COUNTERS} — \
                 coordinator and worker are different binaries"
            )));
        }
        let bank = Counters::new();
        for c in ALL_COUNTERS {
            let v = self.u64()?;
            if v > 0 {
                bank.add(c, v);
            }
        }
        Ok(bank.snapshot())
    }

    fn finish(self, name: &str) -> Result<(), MrError> {
        if self.pos != self.buf.len() {
            return Err(MrError::Net(format!(
                "{} frame has {} trailing bytes",
                name,
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;

    fn roundtrip(msg: Msg) {
        let mut wire = Vec::new();
        write_msg(&mut wire, &msg).unwrap();
        let mut cursor = &wire[..];
        let back = read_msg(&mut cursor).unwrap();
        assert_eq!(back, msg);
        assert!(cursor.is_empty(), "frame fully consumed");
    }

    fn sample_counters() -> CounterSnapshot {
        let c = Counters::new();
        c.add(Counter::MapInputRecords, 7);
        c.add(Counter::ShuffleBytes, u64::MAX);
        c.snapshot()
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(Msg::Hello {
            worker: 3,
            wire_caps: CAP_LZ,
        });
        roundtrip(Msg::TaskRequest);
        roundtrip(Msg::MapTask {
            task: 1,
            attempt: 2,
            credits: 4,
            split: InputSplit::new(vec![
                KvPair::new(b"k".to_vec(), b"v".to_vec()),
                KvPair::new(Vec::new(), b"only-value".to_vec()),
            ]),
        });
        roundtrip(Msg::MapSegment {
            partition: 9,
            data: vec![0, 1, 2, 255],
        });
        roundtrip(Msg::MapDone {
            task: 1,
            attempt: 0,
            local: sample_counters(),
            harness: Counters::new().snapshot(),
        });
        roundtrip(Msg::ReduceTask {
            task: 0,
            attempt: 1,
        });
        roundtrip(Msg::FetchStart { credits: 8 });
        roundtrip(Msg::SegChunk {
            index: 2,
            last: true,
            comp: false,
            orig_len: 0,
            data: vec![42; 100],
        });
        roundtrip(Msg::SegChunk {
            index: 0,
            last: true,
            comp: true,
            orig_len: 4096,
            data: vec![9; 60],
        });
        roundtrip(Msg::SegmentsDone { count: 5 });
        roundtrip(Msg::Credit);
        roundtrip(Msg::ReduceDone {
            task: 4,
            attempt: 1,
            local: sample_counters(),
            harness: sample_counters(),
            outputs: vec![KvPair::new(b"a".to_vec(), b"1".to_vec())],
        });
        roundtrip(Msg::TaskFailed {
            task: 2,
            attempt: 3,
            reduce: true,
            checksum: true,
            error: "segment checksum failure: crc".into(),
            harness: sample_counters(),
        });
        roundtrip(Msg::Shutdown);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &Msg::TaskRequest).unwrap();
        write_msg(&mut wire, &Msg::Credit).unwrap();
        write_msg(&mut wire, &Msg::Shutdown).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::TaskRequest);
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::Credit);
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::Shutdown);
        assert!(read_msg(&mut cursor).is_err(), "EOF is a closed connection");
    }

    #[test]
    fn malformed_frames_error_not_panic() {
        // Truncated payload.
        let mut wire = Vec::new();
        write_msg(
            &mut wire,
            &Msg::MapSegment {
                partition: 0,
                data: vec![1; 50],
            },
        )
        .unwrap();
        wire.truncate(wire.len() - 10);
        assert!(matches!(read_msg(&mut &wire[..]), Err(MrError::Net(_))));

        // Unknown tag.
        let bogus = [1u8, 0, 0, 0, 200u8];
        assert!(matches!(read_msg(&mut &bogus[..]), Err(MrError::Net(_))));

        // Oversized length prefix.
        let huge = (DEFAULT_MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(matches!(read_msg(&mut &huge[..]), Err(MrError::Net(_))));

        // Trailing garbage after a fixed-size body.
        let mut framed = Vec::new();
        let payload = [2u8, 9, 9]; // TaskRequest tag + 2 stray bytes
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        assert!(matches!(read_msg(&mut &framed[..]), Err(MrError::Net(_))));
    }

    #[test]
    fn frame_cap_binds_exactly_on_both_sides() {
        // A MapSegment's payload is tag + partition + data length + data.
        let overhead = 1 + 4 + 4;
        let msg = |n: usize| Msg::MapSegment {
            partition: 0,
            data: vec![7u8; n],
        };
        let cap = overhead + 100;

        // Write side: a frame exactly at the cap goes out; one byte
        // more is rejected before anything hits the socket.
        let mut wire = Vec::new();
        write_msg_capped(&mut wire, &msg(100), cap).unwrap();
        let at_cap = wire.clone();
        let err = write_msg_capped(&mut Vec::new(), &msg(101), cap).unwrap_err();
        assert!(err.to_string().contains("exceeds the"), "{err}");

        // Read side: the at-cap frame parses under the same cap; under
        // a cap one byte smaller its length prefix is rejected.
        assert_eq!(read_msg_capped(&mut &at_cap[..], cap).unwrap(), msg(100));
        let err = read_msg_capped(&mut &at_cap[..], cap - 1).unwrap_err();
        assert!(err.to_string().contains("frame length"), "{err}");
    }

    #[test]
    fn encode_seg_chunk_matches_write_msg_byte_for_byte() {
        for (len, last, comp, orig_len) in [
            (0usize, true, false, 0u32),
            (100, false, false, 0),
            (100, true, false, 0),
            (100, true, true, 5000),
        ] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut via_msg = Vec::new();
            write_msg(
                &mut via_msg,
                &Msg::SegChunk {
                    index: 3,
                    last,
                    comp,
                    orig_len,
                    data: data.clone(),
                },
            )
            .unwrap();
            let mut via_fill = Vec::new();
            encode_seg_chunk(
                &mut via_fill,
                3,
                last,
                comp,
                orig_len,
                len,
                DEFAULT_MAX_FRAME_BYTES,
                |buf| {
                    buf.copy_from_slice(&data);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(via_msg, via_fill, "len={len} last={last} comp={comp}");
        }
        // The cap applies to the whole frame, including headers.
        let err =
            encode_seg_chunk(&mut Vec::new(), 0, true, false, 0, 100, 100, |_| Ok(())).unwrap_err();
        assert!(err.to_string().contains("exceeds the"), "{err}");
    }

    #[test]
    fn counter_bank_size_mismatch_is_detected() {
        let mut buf = Vec::new();
        buf.push(5u8); // MapDone tag
        put_u32(&mut buf, 0); // task
        put_u32(&mut buf, 0); // attempt
        put_u32(&mut buf, 3); // wrong bank size
        for _ in 0..3 {
            put_u64(&mut buf, 1);
        }
        let mut framed = Vec::new();
        framed.extend_from_slice(&(buf.len() as u32).to_le_bytes());
        framed.extend_from_slice(&buf);
        let err = read_msg(&mut &framed[..]).unwrap_err();
        assert!(err.to_string().contains("counter bank"), "{err}");
    }
}

//! Multi-process distributed runtime: a coordinator process runs the
//! shuffle service and task scheduler; worker processes (or threads,
//! for hermetic tests) connect over TCP or Unix-domain sockets, pull
//! map/reduce assignments, and stream IFile segments back and forth.
//!
//! # Protocol
//!
//! One connection per worker, framed by [`wire`] (u32 length prefix +
//! tag byte). The worker drives: it sends `Hello` once, then loops
//! `TaskRequest` → assignment → task conversation:
//!
//! - **Map**: coordinator sends `MapTask` (with the split and an
//!   initial push-credit window); the worker runs the attempt and sends
//!   one `MapSegment` per non-empty partition, spending a credit each —
//!   the coordinator returns one `Credit` per segment received. The
//!   worker drains its window back to full, then commits with `MapDone`
//!   (or `TaskFailed`).
//! - **Reduce**: coordinator sends `ReduceTask`; the worker's fault
//!   gate runs *before* any fetch, then `FetchStart` opens a
//!   credit-window fetch and the coordinator streams the partition's
//!   segments as `SegChunk` frames **in canonical map-task order**,
//!   blocking per-segment until that map task has completed — this is
//!   the pipelined fetch-while-map overlap, and the ordering is what
//!   keeps distributed runs byte-identical to the local thread pool
//!   (per-index fault-plan corruption lands on the same segment).
//!   `SegmentsDone` closes the stream; the worker replies `ReduceDone`
//!   with its outputs, or `TaskFailed`.
//!
//! Counter semantics mirror the local runner exactly: each attempt
//! carries an attempt-local bank (absorbed by the coordinator only on
//! success) and a harness bank for fault-injection charges (absorbed
//! always). Retries, backoff, and abort run through the same
//! [`WorkQueue`](crate::runner) machinery — a worker that dies mid-task
//! surfaces as a retryable network failure, not a hung job.
//!
//! # Entry points
//!
//! [`run_distributed`] spawns real worker processes by re-executing
//! `current_exe()` with the `SCIHADOOP_DIST_*` environment set; the
//! worker `main` must call [`worker_env`] early and hand off to the
//! job-specific bootstrap. [`run_distributed_with_threads`] runs the
//! same coordinator against in-process worker threads over real
//! sockets — the full wire protocol without process spawning.

mod coordinator;
mod net;
mod shuffle;
mod wire;
mod worker;

pub use coordinator::{run_distributed, run_distributed_with_threads};
pub use net::Transport;
pub use shuffle::{
    auto_shuffle_mem_bytes, SegmentHandle, SegmentRepr, ShuffleStore, SpilledHandle,
};
pub use wire::DEFAULT_MAX_FRAME_BYTES;
pub use worker::run_worker;

use crate::error::MrError;
use std::time::Duration;

/// Environment variable carrying the coordinator's socket address.
pub const ENV_ADDR: &str = "SCIHADOOP_DIST_ADDR";
/// Environment variable carrying the transport name (`tcp` / `uds`).
pub const ENV_TRANSPORT: &str = "SCIHADOOP_DIST_TRANSPORT";
/// Environment variable carrying this worker's numeric id.
pub const ENV_WORKER: &str = "SCIHADOOP_DIST_WORKER";
/// Environment variable carrying the opaque job payload the worker's
/// bootstrap turns back into a `(JobConfig, Mapper, Reducer)` triple.
pub const ENV_JOB: &str = "SCIHADOOP_DIST_JOB";

/// Fetch window a worker grants the coordinator in `FetchStart`.
pub(crate) const DEFAULT_FETCH_CREDITS: u32 = 8;

/// Transparent compression applied to shuffle bytes in flight and at
/// rest: segments are compressed once at publish (so spills hit disk
/// small and serving stays zero-copy of the compressed bytes) and
/// decompressed by the fetching reducer before its CRC check. Placement
/// and framing only — reduce inputs, outputs, and every job-level
/// counter except the new wire/codec telemetry are byte-identical to
/// [`WireCodec::Identity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Raw segment bytes on the wire and on spill disk.
    #[default]
    Identity,
    /// [`scihadoop_compress::lz`] frames: LZ4-class speed, no entropy
    /// stage. Used only for segments it actually shrinks; segments that
    /// don't compress are stored and served raw.
    Lz,
}

impl WireCodec {
    /// Parse a `--wire-codec` grammar name.
    pub fn parse(s: &str) -> Result<Self, MrError> {
        match s {
            "identity" => Ok(WireCodec::Identity),
            "lz" => Ok(WireCodec::Lz),
            other => Err(MrError::Config(format!(
                "unknown wire codec {other:?}: expected identity|lz"
            ))),
        }
    }

    /// The grammar name, inverse of [`WireCodec::parse`].
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::Identity => "identity",
            WireCodec::Lz => "lz",
        }
    }
}

/// Settings for the distributed runtime, separate from [`crate::JobConfig`]
/// because they describe *where* the job runs, not what it computes.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of worker processes (or threads) to run tasks on.
    pub workers: usize,
    /// Socket family between coordinator and workers.
    pub transport: Transport,
    /// Arguments passed to re-executions of `current_exe()` when
    /// spawning worker processes (e.g. the libtest filter that routes a
    /// test binary into its worker entry point). Unused in thread mode.
    pub worker_args: Vec<String>,
    /// Opaque job description exported to worker processes via
    /// [`ENV_JOB`]; the worker bootstrap parses it back into the same
    /// config/mapper/reducer the coordinator uses. Unused in thread
    /// mode. Must be non-empty for [`run_distributed`].
    pub job_payload: String,
    /// Initial push-credit window granted to each map attempt.
    pub push_credits: u32,
    /// Chunk size for streaming segments to reducers.
    pub chunk_bytes: usize,
    /// How long to wait for all workers to connect before giving up.
    pub spawn_timeout: Duration,
    /// In-memory budget for the coordinator's shuffle store, in bytes.
    /// Segments beyond it spill to per-partition disk files and are
    /// served back by positioned reads. `None` sizes the budget from
    /// available machine memory
    /// ([`auto_shuffle_mem_bytes`](crate::dist::auto_shuffle_mem_bytes));
    /// `Some(0)` spills everything, `Some(usize::MAX)` never spills.
    /// Placement only — the served bytes are identical either way.
    pub shuffle_mem_bytes: Option<usize>,
    /// Upper bound on one wire frame's payload, a guard against corrupt
    /// length prefixes causing giant allocations. Defaults to
    /// [`DEFAULT_MAX_FRAME_BYTES`]; must comfortably exceed
    /// `chunk_bytes` plus frame overhead.
    pub max_frame_bytes: usize,
    /// Shuffle wire/spill compression. Workers advertise lz capability
    /// in `Hello`; the coordinator only streams compressed frames to
    /// workers that negotiated them, so mixed fleets degrade to raw
    /// serving instead of failing.
    pub wire_codec: WireCodec,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            workers: 3,
            transport: Transport::default(),
            worker_args: Vec::new(),
            job_payload: String::new(),
            push_credits: 4,
            chunk_bytes: 64 << 10,
            spawn_timeout: Duration::from_secs(30),
            shuffle_mem_bytes: None,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            wire_codec: WireCodec::default(),
        }
    }
}

impl DistConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), MrError> {
        if self.workers == 0 {
            return Err(MrError::Config("dist workers must be > 0".into()));
        }
        if self.push_credits == 0 {
            return Err(MrError::Config("push_credits must be > 0".into()));
        }
        if self.chunk_bytes == 0 {
            return Err(MrError::Config("chunk_bytes must be > 0".into()));
        }
        // A SegChunk frame is the chunk payload plus a fixed header;
        // 64 bytes of slack covers every header in the protocol.
        if self.max_frame_bytes < self.chunk_bytes + 64 {
            return Err(MrError::Config(format!(
                "max_frame_bytes ({}) must exceed chunk_bytes ({}) plus frame overhead",
                self.max_frame_bytes, self.chunk_bytes
            )));
        }
        Ok(())
    }

    /// Builder-style setter for the worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Builder-style setter for the transport.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Builder-style setter for worker-process arguments.
    pub fn with_worker_args(mut self, args: &[&str]) -> Self {
        self.worker_args = args.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder-style setter for the job payload.
    pub fn with_job_payload(mut self, payload: &str) -> Self {
        self.job_payload = payload.to_string();
        self
    }

    /// Builder-style setter for the streaming chunk size.
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Builder-style setter for the shuffle store's in-memory budget.
    pub fn with_shuffle_mem_bytes(mut self, bytes: Option<usize>) -> Self {
        self.shuffle_mem_bytes = bytes;
        self
    }

    /// Builder-style setter for the wire frame cap.
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Builder-style setter for shuffle wire/spill compression.
    pub fn with_wire_codec(mut self, codec: WireCodec) -> Self {
        self.wire_codec = codec;
        self
    }

    /// The effective shuffle memory budget: the configured value, or
    /// the machine-sized default.
    pub fn shuffle_mem_budget(&self) -> usize {
        self.shuffle_mem_bytes
            .unwrap_or_else(auto_shuffle_mem_bytes)
    }
}

/// What a spawned worker process reads from its environment.
#[derive(Debug, Clone)]
pub struct WorkerEnv {
    /// Coordinator address ([`ENV_ADDR`]).
    pub addr: String,
    /// Socket family ([`ENV_TRANSPORT`]).
    pub transport: Transport,
    /// This worker's id ([`ENV_WORKER`]).
    pub worker: u32,
    /// Opaque job description ([`ENV_JOB`]).
    pub job_payload: String,
}

/// Detect a worker-process environment. `None` means this process is
/// not a spawned worker (the common case); binaries that can host
/// workers call this first thing in `main` and divert into their worker
/// bootstrap when it returns `Some`. Malformed values in a set
/// environment error out rather than silently running the normal path.
pub fn worker_env() -> Result<Option<WorkerEnv>, MrError> {
    let Ok(addr) = std::env::var(ENV_ADDR) else {
        return Ok(None);
    };
    let get = |key: &str| {
        std::env::var(key).map_err(|_| {
            MrError::Config(format!(
                "{ENV_ADDR} is set but {key} is missing from the environment"
            ))
        })
    };
    let transport = Transport::parse(&get(ENV_TRANSPORT)?)?;
    let worker = get(ENV_WORKER)?
        .parse::<u32>()
        .map_err(|e| MrError::Config(format!("bad {ENV_WORKER}: {e}")))?;
    let job_payload = get(ENV_JOB)?;
    Ok(Some(WorkerEnv {
        addr,
        transport,
        worker,
        job_payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_config_validates() {
        assert!(DistConfig::default().validate().is_ok());
        assert!(DistConfig::default().with_workers(0).validate().is_err());
        assert!(DistConfig::default()
            .with_chunk_bytes(0)
            .validate()
            .is_err());
        let zero_credits = DistConfig {
            push_credits: 0,
            ..DistConfig::default()
        };
        assert!(zero_credits.validate().is_err());
    }

    #[test]
    fn frame_cap_must_exceed_chunk_size() {
        // A cap smaller than one chunk's frame could never carry a
        // SegChunk; validation rejects it.
        let cfg = DistConfig::default().with_max_frame_bytes(100);
        assert!(cfg.validate().is_err());
        let cfg = DistConfig::default()
            .with_chunk_bytes(1024)
            .with_max_frame_bytes(1024 + 64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn wire_codec_names_round_trip() {
        for codec in [WireCodec::Identity, WireCodec::Lz] {
            assert_eq!(WireCodec::parse(codec.name()).unwrap(), codec);
        }
        assert!(WireCodec::parse("deflate").is_err());
        assert!(WireCodec::parse("").is_err());
    }

    #[test]
    fn worker_env_absent_means_not_a_worker() {
        // The test runner never sets the dist environment for itself.
        assert!(worker_env().unwrap().is_none());
    }
}

//! The IFile-style intermediate record format.
//!
//! Hadoop materializes map output as framed `(key, value)` records;
//! "the file format used by Hadoop adds a non-zero overhead per key/value
//! pair" (§IV-D) — overhead the paper's Fig. 8 shows aggregation
//! mitigating. Two framings are supported, matching the two overheads
//! visible in the paper:
//!
//! * [`Framing::SequenceFile`] — 4-byte record length + key/value vints:
//!   6 bytes/record for small records. With a 6-byte file header this
//!   reproduces the §I arithmetic exactly: a 100³ float grid with
//!   4-int keys gives 26,000,006 bytes; with `windspeed1` keys,
//!   33,000,006 bytes.
//! * [`Framing::IFile`] — key/value vints only: 2 bytes/record, the
//!   1.91 MB "file overhead" bar of Fig. 8 (10⁶ records × 2 B).
//!
//! A writer wraps a [`Codec`]: `close()` compresses everything written
//! and reports both raw and materialized sizes.

use crate::error::MrError;
use crate::keysem::KeySemantics;
use crate::record::KvPair;
use scihadoop_compress::{crc32c, Codec};
use std::sync::Arc;

/// File magic ("SciHadoop InterFile") + version + framing byte = 6-byte
/// header.
const HEADER_LEN: usize = 6;
const MAGIC: &[u8; 4] = b"SHIF";
/// Format version without an integrity trailer (the original layout).
const VERSION_PLAIN: u8 = 1;
/// Format version whose raw stream ends in a CRC-32 trailer.
const VERSION_CRC: u8 = 2;
/// Format version 3: records grouped into front-coded sorted blocks,
/// each with its own CRC-32C, followed by a fence-key index and the v2
/// segment trailer. See [`IFileWriter::v3`].
const VERSION_BLOCK: u8 = 3;
/// Big-endian CRC-32 of everything before it (header + records).
const TRAILER_LEN: usize = 4;
/// Per-block CRC-32C field size in a v3 block header.
const BLOCK_CRC_LEN: usize = 4;
/// Fixed-width big-endian fence-index offset at the end of a v3 body.
const INDEX_OFFSET_LEN: usize = 8;

/// Default raw-body byte budget per v3 block. Small enough that a
/// contended merge decodes little past what it needs and a corrupt
/// block invalidates only a few KiB; large enough that the per-block
/// header + fence-index entry stay well under 1% of the block (see the
/// block-budget sweep in EXPERIMENTS.md).
pub const DEFAULT_BLOCK_BUDGET: usize = 4096;

/// Which on-disk segment layout an [`IFileWriter`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IFileVersion {
    /// Version 1: framed records, no integrity trailer (legacy).
    V1,
    /// Version 2: framed records + CRC-32C segment trailer (default).
    #[default]
    V2,
    /// Version 3: front-coded sorted blocks + fence-key index + trailer.
    V3,
}

impl IFileVersion {
    /// The header version byte this layout writes.
    pub fn number(self) -> u8 {
        match self {
            IFileVersion::V1 => VERSION_PLAIN,
            IFileVersion::V2 => VERSION_CRC,
            IFileVersion::V3 => VERSION_BLOCK,
        }
    }

    /// Parse a `1`/`2`/`3` command-line argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "1" => Ok(IFileVersion::V1),
            "2" => Ok(IFileVersion::V2),
            "3" => Ok(IFileVersion::V3),
            other => Err(format!(
                "unknown IFile version {other:?} (expected 1, 2 or 3)"
            )),
        }
    }
}

/// Record framing variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// 4-byte big-endian record length, then key/value vints.
    SequenceFile,
    /// Key/value vints only (Hadoop's actual IFile framing).
    IFile,
}

impl Framing {
    fn tag(self) -> u8 {
        match self {
            Framing::SequenceFile => 0,
            Framing::IFile => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, MrError> {
        match tag {
            0 => Ok(Framing::SequenceFile),
            1 => Ok(Framing::IFile),
            t => Err(MrError::Intermediate(format!("unknown framing {t}"))),
        }
    }

    /// Framing bytes for a record with the given key/value sizes.
    pub fn overhead(self, key_len: usize, value_len: usize) -> usize {
        let vints = vint_len(key_len as i64) + vint_len(value_len as i64);
        match self {
            Framing::SequenceFile => 4 + vints,
            Framing::IFile => vints,
        }
    }

    /// Constant per-file overhead.
    pub fn file_overhead(self) -> usize {
        HEADER_LEN
    }
}

/// Hadoop-compatible vint length (see `scihadoop-grid::writable` for the
/// wire format; duplicated here so the engine stays substrate-free).
pub fn vint_len(v: i64) -> usize {
    if (-112..=127).contains(&v) {
        1
    } else {
        let m = if v < 0 { !v } else { v };
        1 + (8 - (m.leading_zeros() as usize) / 8)
    }
}

fn write_vint(out: &mut Vec<u8>, v: i64) {
    if (-112..=127).contains(&v) {
        out.push(v as u8);
        return;
    }
    let (mut tag, mag) = if v < 0 { (-120i64, !v) } else { (-112i64, v) };
    let data_bytes = (8 - (mag.leading_zeros() as usize) / 8).max(1);
    tag -= data_bytes as i64;
    out.push(tag as u8);
    for i in (0..data_bytes).rev() {
        out.push((mag >> (8 * i)) as u8);
    }
}

fn read_vint(buf: &[u8]) -> Result<(i64, usize), MrError> {
    let first = *buf
        .first()
        .ok_or_else(|| MrError::Intermediate("empty vint".into()))? as i8;
    if first >= -112 {
        return Ok((first as i64, 1));
    }
    let (negative, data_bytes) = if first >= -120 {
        (false, (-113 - first as i64) as usize + 1)
    } else {
        (true, (-121 - first as i64) as usize + 1)
    };
    if buf.len() < 1 + data_bytes {
        return Err(MrError::Intermediate("short vint".into()));
    }
    // Accumulate in u64: 8 data bytes fill exactly 64 bits, so the shift
    // can never overflow. A magnitude above i64::MAX has no i64
    // representation — a malformed encoding, not a panic.
    let mut mag = 0u64;
    for &b in &buf[1..1 + data_bytes] {
        mag = (mag << 8) | b as u64;
    }
    if mag > i64::MAX as u64 {
        return Err(MrError::Intermediate(format!(
            "vint magnitude {mag:#x} out of i64 range"
        )));
    }
    let mag = mag as i64;
    Ok((if negative { !mag } else { mag }, 1 + data_bytes))
}

/// Writes framed records into an in-memory segment, compressing on close.
pub struct IFileWriter {
    framing: Framing,
    codec: Arc<dyn Codec>,
    buf: Vec<u8>,
    records: u64,
    key_bytes: u64,
    value_bytes: u64,
    stored_key_bytes: u64,
    trailer: bool,
    /// `Some` iff this writer emits the version-3 block layout.
    block: Option<BlockState>,
}

/// In-flight v3 block-building state. One block's records are staged in
/// `body` (front-coded against `last_key`) and flushed to the segment
/// buffer with a block header once `body` reaches the byte budget.
struct BlockState {
    ks: Arc<dyn KeySemantics>,
    budget: usize,
    body: Vec<u8>,
    records: u64,
    key_bytes: u64,
    stored_key_bytes: u64,
    value_bytes: u64,
    /// First key of the open block (the block's fence key).
    fence: Vec<u8>,
    /// Previous appended key, reconstructed incrementally.
    last_key: Vec<u8>,
    /// `(segment offset, fence sort_prefix, fence key)` per sealed block.
    fences: Vec<(usize, u64, Vec<u8>)>,
}

impl BlockState {
    /// Flush the open block (if any) to `buf` as
    /// `vints(records, key_bytes, stored_key_bytes, value_bytes),
    /// vint(fence_len), fence, vint(body_len), crc32c(body), body`
    /// and record its fence-index entry.
    fn seal(&mut self, buf: &mut Vec<u8>) {
        if self.records == 0 {
            return;
        }
        let offset = buf.len();
        let prefix = self.ks.sort_prefix(&self.fence);
        write_vint(buf, self.records as i64);
        write_vint(buf, self.key_bytes as i64);
        write_vint(buf, self.stored_key_bytes as i64);
        write_vint(buf, self.value_bytes as i64);
        write_vint(buf, self.fence.len() as i64);
        buf.extend_from_slice(&self.fence);
        write_vint(buf, self.body.len() as i64);
        buf.extend_from_slice(&crc32c(&self.body).to_be_bytes());
        buf.extend_from_slice(&self.body);
        self.fences
            .push((offset, prefix, std::mem::take(&mut self.fence)));
        self.body.clear();
        self.last_key.clear();
        self.records = 0;
        self.key_bytes = 0;
        self.stored_key_bytes = 0;
        self.value_bytes = 0;
    }
}

/// Length of the longest common prefix of two byte strings.
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A closed intermediate segment plus its size accounting.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Compressed (materialized) bytes — what would hit disk and network.
    pub data: Vec<u8>,
    /// Raw framed size before compression.
    pub raw_bytes: u64,
    /// Records contained.
    pub records: u64,
    /// Logical key bytes (excluding framing; pre-front-coding for v3).
    pub key_bytes: u64,
    /// Raw value bytes.
    pub value_bytes: u64,
    /// Key bytes actually stored. Equals `key_bytes` for v1/v2; for v3
    /// only the non-shared key suffixes are stored, so
    /// `key_bytes - stored_key_bytes` is the front-coding saving.
    pub stored_key_bytes: u64,
    /// Blocks written (0 for v1/v2 segments).
    pub blocks: u64,
    /// Nanoseconds spent compressing.
    pub compress_nanos: u64,
}

impl Segment {
    /// Materialized size in bytes.
    pub fn materialized_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Framing overhead bytes: raw size minus stored key/value payload
    /// and the constant file header. For v3 this covers the per-record
    /// prefix/suffix vints, block headers (fence keys, per-block CRCs),
    /// and the fence-key index.
    pub fn framing_bytes(&self) -> u64 {
        let payload = self.stored_key_bytes + self.value_bytes + HEADER_LEN as u64;
        debug_assert!(
            self.raw_bytes >= payload,
            "segment accounting invariant violated: raw {} < stored keys {} + values {} + header {}",
            self.raw_bytes,
            self.stored_key_bytes,
            self.value_bytes,
            HEADER_LEN
        );
        self.raw_bytes.saturating_sub(payload)
    }

    /// Key bytes removed by front coding (0 for v1/v2 segments). The
    /// byte-split identity every report builds on is
    /// `key_bytes + value_bytes + framing_bytes() + header ==
    /// raw_bytes + key_saved_bytes()`.
    pub fn key_saved_bytes(&self) -> u64 {
        self.key_bytes - self.stored_key_bytes
    }
}

impl IFileWriter {
    /// Open a writer with the given framing and codec. Segments carry a
    /// CRC-32 trailer (format version 2) so shuffle-side corruption is
    /// detected at open time instead of surfacing as garbage records.
    pub fn new(framing: Framing, codec: Arc<dyn Codec>) -> Self {
        Self::with_trailer(framing, codec, true)
    }

    /// Open a writer that emits the original version-1 layout with no
    /// integrity trailer (legacy format; corruption tests exercise the
    /// parser's behavior without CRC protection through this).
    pub fn without_trailer(framing: Framing, codec: Arc<dyn Codec>) -> Self {
        Self::with_trailer(framing, codec, false)
    }

    fn with_trailer(framing: Framing, codec: Arc<dyn Codec>, trailer: bool) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(MAGIC);
        buf.push(if trailer { VERSION_CRC } else { VERSION_PLAIN });
        buf.push(framing.tag());
        debug_assert_eq!(buf.len(), HEADER_LEN);
        IFileWriter {
            framing,
            codec,
            buf,
            records: 0,
            key_bytes: 0,
            value_bytes: 0,
            stored_key_bytes: 0,
            trailer,
            block: None,
        }
    }

    /// Open a version-3 writer: records are grouped into fixed-budget
    /// blocks whose keys are front-coded against their predecessor, each
    /// block carries its own CRC-32C, and the segment ends with a
    /// fence-key index (first key + cached [`KeySemantics::sort_prefix`]
    /// + offset per block) followed by the v2 CRC trailer.
    ///
    /// Front coding itself is order-agnostic, but the fence index only
    /// supports binary search and merge block skipping when keys are
    /// appended in `ks` sort order — which the spill sort guarantees.
    pub fn v3(framing: Framing, codec: Arc<dyn Codec>, ks: Arc<dyn KeySemantics>) -> Self {
        Self::v3_with_budget(framing, codec, ks, DEFAULT_BLOCK_BUDGET)
    }

    /// [`IFileWriter::v3`] with an explicit per-block raw-body byte
    /// budget (the block-budget sweep and tests pin small budgets to
    /// force many blocks).
    pub fn v3_with_budget(
        framing: Framing,
        codec: Arc<dyn Codec>,
        ks: Arc<dyn KeySemantics>,
        budget: usize,
    ) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION_BLOCK);
        buf.push(framing.tag());
        debug_assert_eq!(buf.len(), HEADER_LEN);
        IFileWriter {
            framing,
            codec,
            buf,
            records: 0,
            key_bytes: 0,
            value_bytes: 0,
            stored_key_bytes: 0,
            trailer: true,
            block: Some(BlockState {
                ks,
                budget: budget.max(1),
                body: Vec::with_capacity(budget.max(1)),
                records: 0,
                key_bytes: 0,
                stored_key_bytes: 0,
                value_bytes: 0,
                fence: Vec::new(),
                last_key: Vec::new(),
                fences: Vec::new(),
            }),
        }
    }

    /// Append one record.
    pub fn append(&mut self, key: &[u8], value: &[u8]) {
        if self.block.is_some() {
            self.append_v3(key, value);
            return;
        }
        match self.framing {
            Framing::SequenceFile => {
                let body = vint_len(key.len() as i64)
                    + vint_len(value.len() as i64)
                    + key.len()
                    + value.len();
                self.buf.extend_from_slice(&(body as u32).to_be_bytes());
            }
            Framing::IFile => {}
        }
        write_vint(&mut self.buf, key.len() as i64);
        write_vint(&mut self.buf, value.len() as i64);
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.records += 1;
        self.key_bytes += key.len() as u64;
        self.value_bytes += value.len() as u64;
        self.stored_key_bytes += key.len() as u64;
    }

    /// v3 append: stage `(shared_prefix_len, suffix_len, value_len,
    /// suffix, value)` into the open block's body, sealing the previous
    /// block first if it has reached its budget. The keys arrive sorted
    /// from the spill sort, so the shared-prefix computation against the
    /// incrementally-maintained `last_key` is a single forward scan.
    fn append_v3(&mut self, key: &[u8], value: &[u8]) {
        let b = self.block.as_mut().expect("v3 writer has block state");
        if b.records > 0 && b.body.len() >= b.budget {
            b.seal(&mut self.buf);
        }
        if b.records == 0 {
            // Block's first record: its key becomes the fence key, and
            // it front-codes against itself (shared = len, empty suffix)
            // so the decoder needs no special case.
            b.fence.clear();
            b.fence.extend_from_slice(key);
            b.last_key.clear();
            b.last_key.extend_from_slice(key);
        }
        let shared = common_prefix_len(&b.last_key, key);
        let suffix = &key[shared..];
        write_vint(&mut b.body, shared as i64);
        write_vint(&mut b.body, suffix.len() as i64);
        write_vint(&mut b.body, value.len() as i64);
        b.body.extend_from_slice(suffix);
        b.body.extend_from_slice(value);
        b.last_key.truncate(shared);
        b.last_key.extend_from_slice(suffix);
        b.records += 1;
        b.key_bytes += key.len() as u64;
        b.stored_key_bytes += suffix.len() as u64;
        b.value_bytes += value.len() as u64;
        self.records += 1;
        self.key_bytes += key.len() as u64;
        self.stored_key_bytes += suffix.len() as u64;
        self.value_bytes += value.len() as u64;
    }

    /// Splice an already-encoded v3 block (obtained from a
    /// [`BlockCursor`] during a merge) into this segment verbatim — no
    /// decode, no re-encode. Any open partial block is sealed first so
    /// record order is preserved; the copied block is self-contained
    /// (its first record front-codes against its own fence key). The
    /// block's CRC is re-verified before adoption so a copy of corrupt
    /// bytes cannot launder a bad checksum into a fresh trailer.
    ///
    /// Panics if this writer is not a v3 writer.
    pub fn append_encoded_block(&mut self, blk: &EncodedBlock<'_>) -> Result<(), MrError> {
        let b = self
            .block
            .as_mut()
            .expect("append_encoded_block requires a v3 writer");
        blk.verify()?;
        b.seal(&mut self.buf);
        let offset = self.buf.len();
        self.buf.extend_from_slice(blk.bytes);
        b.fences
            .push((offset, blk.fence_prefix, blk.fence_key.to_vec()));
        self.records += blk.records;
        self.key_bytes += blk.key_bytes;
        self.stored_key_bytes += blk.stored_key_bytes;
        self.value_bytes += blk.value_bytes;
        Ok(())
    }

    /// Append a pair.
    pub fn append_pair(&mut self, pair: &KvPair) {
        self.append(&pair.key, &pair.value);
    }

    /// Raw bytes buffered so far (including header).
    pub fn raw_len(&self) -> usize {
        self.buf.len()
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Compress and seal the segment.
    pub fn close(mut self) -> Segment {
        let mut blocks = 0u64;
        if let Some(mut b) = self.block.take() {
            b.seal(&mut self.buf);
            blocks = b.fences.len() as u64;
            // Fence-key index: count, then (offset, sort_prefix, fence)
            // per block, then the fixed-width index offset so a reader
            // can find the index without scanning blocks.
            let index_offset = self.buf.len() as u64;
            write_vint(&mut self.buf, b.fences.len() as i64);
            for (offset, prefix, fence) in &b.fences {
                write_vint(&mut self.buf, *offset as i64);
                self.buf.extend_from_slice(&prefix.to_be_bytes());
                write_vint(&mut self.buf, fence.len() as i64);
                self.buf.extend_from_slice(fence);
            }
            self.buf.extend_from_slice(&index_offset.to_be_bytes());
        }
        // Size accounting excludes the trailer: `raw_bytes` keeps meaning
        // "header + framed records" (plus block/index framing for v3), so
        // the paper's byte arithmetic (and every counter invariant built
        // on it) is identical with and without integrity checking.
        let raw_bytes = self.buf.len() as u64;
        if self.trailer {
            let crc = crc32c(&self.buf);
            self.buf.extend_from_slice(&crc.to_be_bytes());
        }
        let t0 = crate::clock::thread_cpu_nanos();
        let data = self.codec.compress(&self.buf);
        let compress_nanos = crate::clock::since(t0);
        crate::obs::hist_many(&[
            (crate::obs::Metric::CompressInBytes, raw_bytes),
            (crate::obs::Metric::CompressOutBytes, data.len() as u64),
            (
                crate::obs::Metric::CompressNsPerKib,
                compress_nanos.saturating_mul(1024) / raw_bytes.max(1),
            ),
        ]);
        Segment {
            data,
            raw_bytes,
            records: self.records,
            key_bytes: self.key_bytes,
            value_bytes: self.value_bytes,
            stored_key_bytes: self.stored_key_bytes,
            blocks,
            compress_nanos,
        }
    }
}

/// One fence-index entry of a v3 segment: where a block starts, its
/// fence key (stored as a range into the segment buffer), and the fence
/// key's cached sort prefix.
#[derive(Debug, Clone)]
pub(crate) struct Fence {
    /// Absolute offset of the block header in the segment buffer.
    pub(crate) offset: usize,
    /// `sort_prefix` of the block's first key, cached at write time.
    pub(crate) prefix: u64,
    key_start: usize,
    key_len: usize,
}

/// A decompressed segment whose records are parsed lazily through
/// [`RecordCursor`]s — the reducer's streaming merge reads records
/// straight out of this buffer without materializing owned pairs.
pub struct RawSegment {
    raw: Vec<u8>,
    framing: Framing,
    version: u8,
    /// End of the record region (excludes a version-2 CRC trailer).
    body_end: usize,
    /// v3 only: end of the block region (start of the fence index).
    blocks_end: usize,
    /// v3 only: the parsed fence-key index, one entry per block.
    fences: Vec<Fence>,
    /// Nanoseconds spent decompressing.
    pub decompress_nanos: u64,
}

impl RawSegment {
    /// Decompress a segment, validate its header, and — for version-2
    /// and version-3 segments — verify the CRC-32 trailer over
    /// everything before it. A trailer mismatch is a
    /// [`MrError::Checksum`], distinguishable from structural parse
    /// errors so the runner can count it. For version 3 the fence-key
    /// index is parsed and bounds-checked here, so cursors never touch
    /// unvalidated offsets.
    pub fn open(segment: &[u8], codec: &dyn Codec) -> Result<Self, MrError> {
        let t0 = crate::clock::thread_cpu_nanos();
        let raw = codec.decompress(segment)?;
        let decompress_nanos = crate::clock::since(t0);
        crate::obs::hist(
            crate::obs::Metric::DecompressNsPerKib,
            decompress_nanos.saturating_mul(1024) / (raw.len() as u64).max(1),
        );
        if raw.len() < HEADER_LEN || &raw[..4] != MAGIC {
            return Err(MrError::Intermediate("bad segment header".into()));
        }
        let version = raw[4];
        let body_end = match version {
            VERSION_PLAIN => raw.len(),
            VERSION_CRC | VERSION_BLOCK => {
                let body_end = raw
                    .len()
                    .checked_sub(TRAILER_LEN)
                    .filter(|&e| e >= HEADER_LEN)
                    .ok_or_else(|| MrError::Checksum("segment too short for CRC trailer".into()))?;
                let stored = u32::from_be_bytes(raw[body_end..].try_into().unwrap());
                let actual = crc32c(&raw[..body_end]);
                if stored != actual {
                    return Err(MrError::Checksum(format!(
                        "segment CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
                    )));
                }
                body_end
            }
            v => return Err(MrError::Intermediate(format!("bad version {v}"))),
        };
        let framing = Framing::from_tag(raw[5])?;
        let (blocks_end, fences) = if version == VERSION_BLOCK {
            parse_fence_index(&raw, body_end)?
        } else {
            (body_end, Vec::new())
        };
        Ok(RawSegment {
            raw,
            framing,
            version,
            body_end,
            blocks_end,
            fences,
            decompress_nanos,
        })
    }

    /// Whether this segment uses the version-3 block layout (front-coded
    /// blocks + fence index). Such segments must be read through
    /// [`RawSegment::block_cursor`]; the flat [`RecordCursor`] cannot
    /// parse them.
    pub fn is_block_format(&self) -> bool {
        self.version == VERSION_BLOCK
    }

    /// Number of blocks (0 for v1/v2 segments).
    pub fn blocks(&self) -> usize {
        self.fences.len()
    }

    /// A cursor over the records, borrowing this segment's buffer.
    /// Only valid for flat (v1/v2) segments; on a v3 segment it yields
    /// no records (use [`RawSegment::block_cursor`]).
    pub fn cursor(&self) -> RecordCursor<'_> {
        debug_assert!(
            !self.is_block_format(),
            "flat cursor over a block-format segment (use block_cursor)"
        );
        RecordCursor {
            raw: &self.raw[..self.body_end],
            framing: self.framing,
            pos: if self.is_block_format() {
                self.body_end
            } else {
                HEADER_LEN
            },
        }
    }

    /// A cursor that derives each record's sort prefix as it parses (see
    /// [`PrefixedCursor`]). Merge consumers cache the `u64` and compare
    /// prefixes instead of keys at every tree/heap operation.
    pub fn prefixed_cursor<'a>(&'a self, ks: &'a dyn KeySemantics) -> PrefixedCursor<'a> {
        PrefixedCursor {
            cursor: self.cursor(),
            ks,
        }
    }

    /// A block-aware cursor over a v3 segment. Panics (debug) on flat
    /// segments — callers dispatch on [`RawSegment::is_block_format`].
    pub fn block_cursor(&self) -> BlockCursor<'_> {
        debug_assert!(
            self.is_block_format(),
            "block cursor over a flat segment (use cursor)"
        );
        BlockCursor {
            raw: &self.raw,
            fences: &self.fences,
            blocks_end: self.blocks_end,
            block: 0,
            entered: false,
            live: true,
            meta: BlockMeta::default(),
            body: &[],
            body_pos: 0,
            decoded: 0,
            key: Vec::new(),
            value: &[],
        }
    }

    /// Total records in the segment. For v3 this sums block-header
    /// record counts (no record decoding); for v1/v2 it walks the
    /// records parse-only. Used to pre-reserve exact capacity.
    pub fn record_count(&self) -> Result<u64, MrError> {
        if self.is_block_format() {
            let mut total = 0u64;
            let cursor = self.block_cursor();
            for i in 0..self.fences.len() {
                total += cursor.parse_meta(i)?.records;
            }
            return Ok(total);
        }
        let mut cursor = self.cursor();
        let mut n = 0u64;
        while cursor.next()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Walk every record in file order, dispatching on the segment
    /// version, invoking `f(key, value)` per record.
    pub fn for_each_record(&self, mut f: impl FnMut(&[u8], &[u8])) -> Result<(), MrError> {
        if self.is_block_format() {
            let mut cursor = self.block_cursor();
            while let Some((key, value)) = cursor.next()? {
                f(key, value);
            }
        } else {
            let mut cursor = self.cursor();
            while let Some((key, value)) = cursor.next()? {
                f(key, value);
            }
        }
        Ok(())
    }
}

/// Parse and validate a v3 fence-key index. Returns the end of the
/// block region (= index start) and the per-block entries. Every offset
/// is checked to be in-bounds and strictly increasing so cursors can
/// trust them.
fn parse_fence_index(raw: &[u8], body_end: usize) -> Result<(usize, Vec<Fence>), MrError> {
    let off_pos = body_end
        .checked_sub(INDEX_OFFSET_LEN)
        .filter(|&p| p >= HEADER_LEN)
        .ok_or_else(|| MrError::Intermediate("segment too short for fence index".into()))?;
    let index_offset = u64::from_be_bytes(raw[off_pos..body_end].try_into().unwrap());
    let blocks_end = usize::try_from(index_offset)
        .ok()
        .filter(|&o| (HEADER_LEN..=off_pos).contains(&o))
        .ok_or_else(|| MrError::Intermediate("fence index offset out of bounds".into()))?;
    let index = &raw[..off_pos];
    let mut pos = blocks_end;
    let (count, used) = read_vint(&index[pos..])?;
    pos += used;
    let count = usize::try_from(count)
        .ok()
        // Each entry needs at least 10 bytes (vint offset + 8-byte
        // prefix + vint key length), bounding allocations up front.
        .filter(|&c| c <= (off_pos - pos) / 10)
        .ok_or_else(|| MrError::Intermediate("implausible fence index count".into()))?;
    let mut fences = Vec::with_capacity(count);
    let mut prev_offset = HEADER_LEN;
    for i in 0..count {
        let (offset, used) = read_vint(&index[pos..])?;
        pos += used;
        let offset = usize::try_from(offset)
            .ok()
            .filter(|&o| o < blocks_end && (i == 0 && o == HEADER_LEN || i > 0 && o > prev_offset))
            .ok_or_else(|| MrError::Intermediate("fence offset out of bounds".into()))?;
        prev_offset = offset;
        if index.len() - pos < 8 {
            return Err(MrError::Intermediate("short fence prefix".into()));
        }
        let prefix = u64::from_be_bytes(index[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let (key_len, used) = read_vint(&index[pos..])?;
        pos += used;
        let key_len = usize::try_from(key_len)
            .ok()
            .filter(|&l| l <= index.len() - pos)
            .ok_or_else(|| MrError::Intermediate("fence key out of bounds".into()))?;
        fences.push(Fence {
            offset,
            prefix,
            key_start: pos,
            key_len,
        });
        pos += key_len;
    }
    if pos != off_pos {
        return Err(MrError::Intermediate(
            "trailing bytes after fence index".into(),
        ));
    }
    if fences.is_empty() && blocks_end != HEADER_LEN {
        return Err(MrError::Intermediate(
            "blocks present but fence index empty".into(),
        ));
    }
    Ok((blocks_end, fences))
}

/// A `(key, value)` record borrowed from a decompressed segment buffer.
pub type RecordSlices<'a> = (&'a [u8], &'a [u8]);

/// A `(key, value)` record whose key borrows a cursor/stream scratch
/// buffer (`'s`, valid until the next advance) while the value still
/// borrows the segment (`'a`) — the shape every front-coded reader
/// yields, since keys are reconstructed incrementally.
pub type ScratchRecord<'s, 'a> = (&'s [u8], &'a [u8]);

/// Lazy record parser over a [`RawSegment`]'s buffer; yields borrowed
/// `(key, value)` slices in file order.
pub struct RecordCursor<'a> {
    raw: &'a [u8],
    framing: Framing,
    pos: usize,
}

impl<'a> RecordCursor<'a> {
    /// The next record, or `None` at end of segment.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next(&mut self) -> Result<Option<RecordSlices<'a>>, MrError> {
        if self.pos >= self.raw.len() {
            return Ok(None);
        }
        let mut rec_len = None;
        if self.framing == Framing::SequenceFile {
            if self.raw.len() - self.pos < 4 {
                return Err(MrError::Intermediate("short record length".into()));
            }
            rec_len = Some(u32::from_be_bytes(
                self.raw[self.pos..self.pos + 4].try_into().unwrap(),
            ));
            self.pos += 4;
        }
        let (klen, kused) = read_vint(&self.raw[self.pos..])?;
        self.pos += kused;
        let (vlen, vused) = read_vint(&self.raw[self.pos..])?;
        self.pos += vused;
        let (klen, vlen) = (
            usize::try_from(klen)
                .map_err(|_| MrError::Intermediate("negative key length".into()))?,
            usize::try_from(vlen)
                .map_err(|_| MrError::Intermediate("negative value length".into()))?,
        );
        if let Some(rec_len) = rec_len {
            // The 4-byte record length must agree with the parsed sizes —
            // u64 arithmetic so adversarial lengths cannot overflow here.
            let expected = kused as u64 + vused as u64 + klen as u64 + vlen as u64;
            if rec_len as u64 != expected {
                return Err(MrError::Intermediate(format!(
                    "record length {rec_len} disagrees with key/value sizes ({expected})"
                )));
            }
        }
        let body = klen
            .checked_add(vlen)
            .and_then(|b| b.checked_add(self.pos))
            .ok_or_else(|| MrError::Intermediate("record body length overflows".into()))?;
        if body > self.raw.len() {
            return Err(MrError::Intermediate("short record body".into()));
        }
        let key = &self.raw[self.pos..self.pos + klen];
        self.pos += klen;
        let value = &self.raw[self.pos..self.pos + vlen];
        self.pos += vlen;
        Ok(Some((key, value)))
    }
}

/// A [`RecordCursor`] that pairs each record with its
/// [`KeySemantics::sort_prefix`], computed exactly once per record at
/// parse time. This keeps the prefix adjacent to the record slices for
/// the merge's loser tree, whose matches then touch only cached `u64`s
/// on the non-tie fast path.
pub struct PrefixedCursor<'a> {
    cursor: RecordCursor<'a>,
    ks: &'a dyn KeySemantics,
}

impl<'a> PrefixedCursor<'a> {
    /// The next `(sort_prefix, record)`, or `None` at end of segment.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next(&mut self) -> Result<Option<(u64, RecordSlices<'a>)>, MrError> {
        Ok(self
            .cursor
            .next()?
            .map(|rec| (self.ks.sort_prefix(rec.0), rec)))
    }
}

/// Parsed v3 block header: sizes from the header vints plus the byte
/// spans of the block, its fence key, and its body within the segment.
#[derive(Debug, Clone, Copy, Default)]
struct BlockMeta {
    records: u64,
    key_bytes: u64,
    stored_key_bytes: u64,
    value_bytes: u64,
    /// Block start (the header's first byte) in the segment buffer.
    start: usize,
    /// Block end — exclusive; equals the next block's start.
    end: usize,
    fence_start: usize,
    fence_len: usize,
    body_start: usize,
    crc: u32,
}

/// A still-encoded v3 block lifted out of a segment by
/// [`BlockCursor::take_block`], carrying everything a v3
/// [`IFileWriter`] needs to splice it into a new segment verbatim:
/// the raw block bytes, the fence key + cached prefix for the new
/// fence index, and the header's size accounting.
#[derive(Debug, Clone, Copy)]
pub struct EncodedBlock<'a> {
    /// The full encoded block (header + CRC + front-coded body).
    pub bytes: &'a [u8],
    /// The block's first key.
    pub fence_key: &'a [u8],
    /// Cached `sort_prefix` of the fence key.
    pub fence_prefix: u64,
    /// Records in the block.
    pub records: u64,
    /// Logical key bytes in the block.
    pub key_bytes: u64,
    /// Stored (post-front-coding) key bytes in the block.
    pub stored_key_bytes: u64,
    /// Value bytes in the block.
    pub value_bytes: u64,
    body: &'a [u8],
    crc: u32,
}

impl<'a> EncodedBlock<'a> {
    /// Re-verify the block's CRC-32C over its front-coded body.
    pub fn verify(&self) -> Result<(), MrError> {
        let actual = crc32c(self.body);
        if actual != self.crc {
            return Err(MrError::Checksum(format!(
                "block CRC mismatch: stored {:#010x}, computed {actual:#010x}",
                self.crc
            )));
        }
        Ok(())
    }

    /// Decode the block's records (front-coding against the fence key),
    /// invoking `f(key, value)` per record. Used by debug-build merge
    /// cross-checks and tests; the fast path never calls this.
    pub fn for_each_record(&self, mut f: impl FnMut(&[u8], &[u8])) -> Result<(), MrError> {
        let mut key = self.fence_key.to_vec();
        let mut pos = 0usize;
        for _ in 0..self.records {
            let (rest, value) = decode_front_coded(self.body, pos, &mut key)?;
            pos = rest;
            f(&key, value);
        }
        if pos != self.body.len() {
            return Err(MrError::Intermediate("trailing bytes in block body".into()));
        }
        Ok(())
    }
}

/// Parse one record's `(shared, suffix, value)` length triple at `pos`,
/// returning the lengths plus the position of the suffix bytes. Fast
/// path: all three fit single-byte vints (values 0..=127 encode as
/// themselves), which covers every record whose lengths are all under
/// 128 bytes.
#[inline]
fn read_record_lens(body: &[u8], pos: usize) -> Result<(usize, usize, usize, usize), MrError> {
    if let Some(&[b0, b1, b2]) = body.get(pos..pos + 3) {
        if (b0 | b1 | b2) < 0x80 {
            return Ok((b0 as usize, b1 as usize, b2 as usize, pos + 3));
        }
    }
    read_record_lens_vint(body, pos)
}

/// General case: multi-byte vints and the error paths.
fn read_record_lens_vint(
    body: &[u8],
    mut pos: usize,
) -> Result<(usize, usize, usize, usize), MrError> {
    let (shared, used) = read_vint(&body[pos..])?;
    pos += used;
    let (suffix_len, used) = read_vint(&body[pos..])?;
    pos += used;
    let (value_len, used) = read_vint(&body[pos..])?;
    pos += used;
    let shared = usize::try_from(shared)
        .map_err(|_| MrError::Intermediate("negative shared prefix length".into()))?;
    let suffix_len = usize::try_from(suffix_len)
        .map_err(|_| MrError::Intermediate("negative suffix length".into()))?;
    let value_len = usize::try_from(value_len)
        .map_err(|_| MrError::Intermediate("negative value length".into()))?;
    Ok((shared, suffix_len, value_len, pos))
}

/// Decode one front-coded record at `pos` of `body` into `key`
/// (truncate-to-shared + extend-with-suffix); returns the next record
/// position and the borrowed value slice.
#[inline]
fn decode_front_coded<'a>(
    body: &'a [u8],
    pos: usize,
    key: &mut Vec<u8>,
) -> Result<(usize, &'a [u8]), MrError> {
    let (shared, suffix_len, value_len, pos) = read_record_lens(body, pos)?;
    if shared > key.len() {
        return Err(MrError::Intermediate(
            "shared prefix exceeds previous key".into(),
        ));
    }
    let end = suffix_len
        .checked_add(value_len)
        .and_then(|b| b.checked_add(pos))
        .filter(|&e| e <= body.len())
        .ok_or_else(|| MrError::Intermediate("short block record body".into()))?;
    key.truncate(shared);
    key.extend_from_slice(&body[pos..pos + suffix_len]);
    let value = &body[pos + suffix_len..end];
    Ok((end, value))
}

/// Streaming cursor over a v3 segment: walks blocks in file order,
/// reconstructing each key incrementally in a single reused buffer.
/// Each block's CRC-32C is verified once on entry; a mismatch surfaces
/// as [`MrError::Checksum`] exactly like a v2 trailer failure.
///
/// Values are borrowed straight from the segment (`'a`); the key is
/// borrowed from the cursor's scratch buffer, valid until the next
/// advance.
pub struct BlockCursor<'a> {
    raw: &'a [u8],
    fences: &'a [Fence],
    blocks_end: usize,
    /// Index of the current block.
    block: usize,
    /// False until the first `advance`.
    entered: bool,
    live: bool,
    meta: BlockMeta,
    body: &'a [u8],
    body_pos: usize,
    /// Records decoded from the current block (the head is number
    /// `decoded`, 1-based).
    decoded: u64,
    key: Vec<u8>,
    value: &'a [u8],
}

impl<'a> BlockCursor<'a> {
    /// Parse and validate block `i`'s header (no body decode).
    fn parse_meta(&self, i: usize) -> Result<BlockMeta, MrError> {
        let start = self.fences[i].offset;
        let end = if i + 1 < self.fences.len() {
            self.fences[i + 1].offset
        } else {
            self.blocks_end
        };
        let hdr = &self.raw[..end];
        let mut pos = start;
        let mut next_size = |what: &str| -> Result<u64, MrError> {
            let (v, used) = read_vint(&hdr[pos..])?;
            pos += used;
            u64::try_from(v).map_err(|_| MrError::Intermediate(format!("negative block {what}")))
        };
        let records = next_size("record count")?;
        let key_bytes = next_size("key bytes")?;
        let stored_key_bytes = next_size("stored key bytes")?;
        let value_bytes = next_size("value bytes")?;
        let fence_len = next_size("fence length")?;
        let fence_len = usize::try_from(fence_len)
            .ok()
            .filter(|&l| l <= hdr.len() - pos)
            .ok_or_else(|| MrError::Intermediate("fence key exceeds block".into()))?;
        let fence_start = pos;
        pos += fence_len;
        let (body_len, used) = read_vint(&hdr[pos..])?;
        pos += used;
        if hdr.len() - pos < BLOCK_CRC_LEN {
            return Err(MrError::Intermediate("short block CRC".into()));
        }
        let crc = u32::from_be_bytes(hdr[pos..pos + BLOCK_CRC_LEN].try_into().unwrap());
        pos += BLOCK_CRC_LEN;
        let body_start = pos;
        let body_len = usize::try_from(body_len)
            .ok()
            .filter(|&l| body_start + l == end)
            .ok_or_else(|| MrError::Intermediate("block body disagrees with block span".into()))?;
        // Every record costs at least 3 body bytes (three vints), so an
        // implausible record count is rejected before any allocation.
        if records == 0 || records.saturating_mul(3) > body_len as u64 {
            return Err(MrError::Intermediate(
                "implausible block record count".into(),
            ));
        }
        Ok(BlockMeta {
            records,
            key_bytes,
            stored_key_bytes,
            value_bytes,
            start,
            end,
            fence_start,
            fence_len,
            body_start,
            crc,
        })
    }

    /// Enter block `self.block`: parse + CRC-check it, seed the key
    /// buffer with its fence key, and decode its first record. Returns
    /// `false` when past the last block.
    fn enter_block(&mut self) -> Result<bool, MrError> {
        if self.block >= self.fences.len() {
            self.live = false;
            return Ok(false);
        }
        let meta = self.parse_meta(self.block)?;
        let body = &self.raw[meta.body_start..meta.end];
        let actual = crc32c(body);
        if actual != meta.crc {
            return Err(MrError::Checksum(format!(
                "block {} CRC mismatch: stored {:#010x}, computed {actual:#010x}",
                self.block, meta.crc
            )));
        }
        // The index's fence key must agree with the block header's copy —
        // ties the (unchecksummed-beyond-the-trailer) index to the block.
        let f = &self.fences[self.block];
        if self.raw[meta.fence_start..meta.fence_start + meta.fence_len]
            != self.raw[f.key_start..f.key_start + f.key_len]
        {
            return Err(MrError::Intermediate(format!(
                "block {} fence key disagrees with index",
                self.block
            )));
        }
        self.key.clear();
        self.key
            .extend_from_slice(&self.raw[meta.fence_start..meta.fence_start + meta.fence_len]);
        self.meta = meta;
        self.body = body;
        self.body_pos = 0;
        self.decoded = 0;
        self.decode_next()
    }

    #[inline]
    fn decode_next(&mut self) -> Result<bool, MrError> {
        let (pos, value) = decode_front_coded(self.body, self.body_pos, &mut self.key)?;
        self.body_pos = pos;
        self.value = value;
        self.decoded += 1;
        Ok(true)
    }

    /// Advance to the next record (crossing into the next block as
    /// needed). Returns `false` at end of segment; afterwards
    /// [`BlockCursor::key`]/[`BlockCursor::value`] hold the new head.
    #[inline]
    pub fn advance(&mut self) -> Result<bool, MrError> {
        if !self.entered {
            self.entered = true;
            return self.enter_block();
        }
        if !self.live {
            return Ok(false);
        }
        if self.decoded == self.meta.records {
            if self.body_pos != self.body.len() {
                return Err(MrError::Intermediate("trailing bytes in block body".into()));
            }
            self.block += 1;
            return self.enter_block();
        }
        self.decode_next()
    }

    /// Whether a current record exists (false once past the last block).
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// The current record's key, borrowed from the cursor's scratch
    /// buffer — valid until the next advance.
    #[inline]
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The current record's value, borrowed from the segment.
    #[inline]
    pub fn value(&self) -> &'a [u8] {
        self.value
    }

    /// True when the current head is the first record of a block whose
    /// remaining records are all still undecoded — the precondition for
    /// [`BlockCursor::take_block`].
    #[inline]
    pub fn at_block_start(&self) -> bool {
        self.entered && self.live && self.decoded == 1
    }

    /// Records remaining in the current block, including the head.
    pub fn block_remaining(&self) -> u64 {
        self.meta.records - self.decoded + 1
    }

    /// Cached fence `sort_prefix` of the *next* block, if any. Every
    /// key in the current block compares `<=` that fence, so it upper-
    /// bounds the current block's keys for the merge's skip rule.
    #[inline]
    pub fn next_fence_prefix(&self) -> Option<u64> {
        self.fences.get(self.block + 1).map(|f| f.prefix)
    }

    /// Lift the current (fully undecoded) block out as an
    /// [`EncodedBlock`] and advance to the first record of the next
    /// block. Callers must check [`BlockCursor::at_block_start`].
    pub fn take_block(&mut self) -> Result<EncodedBlock<'a>, MrError> {
        debug_assert!(self.at_block_start(), "take_block mid-block");
        let meta = self.meta;
        let blk = EncodedBlock {
            bytes: &self.raw[meta.start..meta.end],
            fence_key: &self.raw[meta.fence_start..meta.fence_start + meta.fence_len],
            fence_prefix: self.fences[self.block].prefix,
            records: meta.records,
            key_bytes: meta.key_bytes,
            stored_key_bytes: meta.stored_key_bytes,
            value_bytes: meta.value_bytes,
            body: &self.raw[meta.body_start..meta.end],
            crc: meta.crc,
        };
        self.block += 1;
        self.enter_block()?;
        Ok(blk)
    }

    /// The next record, or `None` at end of segment.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next<'s>(&'s mut self) -> Result<Option<ScratchRecord<'s, 'a>>, MrError> {
        if self.advance()? {
            let value = self.value();
            Ok(Some((self.key(), value)))
        } else {
            Ok(None)
        }
    }
}

/// Reads a segment back into owned records (reference path; the engine
/// itself streams through [`RawSegment`]).
pub struct IFileReader {
    records: Vec<KvPair>,
    /// Nanoseconds spent decompressing.
    pub decompress_nanos: u64,
}

impl IFileReader {
    /// Decompress and parse a segment. A first parse-only pass (block
    /// headers for v3, a record walk for v1/v2) sizes the vector
    /// exactly, so the fill pass never reallocates and each record is
    /// copied straight into its final allocation.
    pub fn open(segment: &[u8], codec: &dyn Codec) -> Result<Self, MrError> {
        let seg = RawSegment::open(segment, codec)?;
        let count = seg.record_count()?;
        let mut records = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
        seg.for_each_record(|key, value| {
            records.push(KvPair::new(key.to_vec(), value.to_vec()));
        })?;
        Ok(IFileReader {
            records,
            decompress_nanos: seg.decompress_nanos,
        })
    }

    /// The records, in file order.
    pub fn into_records(self) -> Vec<KvPair> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_compress::{DeflateCodec, IdentityCodec};

    fn roundtrip(framing: Framing, pairs: &[KvPair]) -> Segment {
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut w = IFileWriter::new(framing, codec.clone());
        for p in pairs {
            w.append_pair(p);
        }
        let seg = w.close();
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(r.into_records(), pairs);
        seg
    }

    #[test]
    fn empty_segment() {
        let seg = roundtrip(Framing::IFile, &[]);
        assert_eq!(seg.records, 0);
        assert_eq!(seg.raw_bytes, HEADER_LEN as u64);
    }

    #[test]
    fn sequencefile_framing_matches_intro_arithmetic() {
        // One record, 16-byte key + 4-byte value: 6 bytes framing → 26
        // bytes/record, the paper's §I number.
        let pair = KvPair::new(vec![1u8; 16], vec![2u8; 4]);
        let seg = roundtrip(Framing::SequenceFile, std::slice::from_ref(&pair));
        assert_eq!(
            seg.raw_bytes,
            (HEADER_LEN + 26) as u64,
            "16B key + 4B value must cost 26 bytes + header"
        );
        // 23-byte key (windspeed1 layout) → 33 bytes/record.
        let pair = KvPair::new(vec![1u8; 23], vec![2u8; 4]);
        let seg = roundtrip(Framing::SequenceFile, &[pair]);
        assert_eq!(seg.raw_bytes, (HEADER_LEN + 33) as u64);
    }

    #[test]
    fn ifile_framing_is_two_bytes_for_small_records() {
        let pair = KvPair::new(vec![1u8; 12], vec![2u8; 4]);
        let seg = roundtrip(Framing::IFile, &[pair]);
        assert_eq!(seg.raw_bytes, (HEADER_LEN + 18) as u64);
        assert_eq!(seg.framing_bytes(), 2);
    }

    #[test]
    fn overhead_fn_matches_writer() {
        for framing in [Framing::SequenceFile, Framing::IFile] {
            for (k, v) in [(0usize, 0usize), (16, 4), (200, 1), (23, 4)] {
                let pair = KvPair::new(vec![0u8; k], vec![0u8; v]);
                let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
                let mut w = IFileWriter::new(framing, codec);
                let before = w.raw_len();
                w.append_pair(&pair);
                let actual = w.raw_len() - before - k - v;
                assert_eq!(
                    actual,
                    framing.overhead(k, v),
                    "framing {framing:?} k={k} v={v}"
                );
            }
        }
    }

    #[test]
    fn accounting_separates_keys_values_framing() {
        let pairs: Vec<KvPair> = (0..100u32)
            .map(|i| KvPair::new(i.to_be_bytes().to_vec(), vec![7u8; 8]))
            .collect();
        let seg = roundtrip(Framing::IFile, &pairs);
        assert_eq!(seg.key_bytes, 400);
        assert_eq!(seg.value_bytes, 800);
        assert_eq!(seg.framing_bytes(), 200);
        assert_eq!(seg.records, 100);
    }

    #[test]
    fn compressing_codec_shrinks_materialized_bytes() {
        let codec: Arc<dyn Codec> = Arc::new(DeflateCodec::new());
        let mut w = IFileWriter::new(Framing::IFile, codec.clone());
        for i in 0..2000u32 {
            w.append(&i.to_be_bytes(), &[0u8; 4]);
        }
        let seg = w.close();
        assert!(seg.materialized_bytes() < seg.raw_bytes / 2);
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(r.into_records().len(), 2000);
    }

    #[test]
    fn reader_rejects_garbage() {
        let codec = IdentityCodec;
        assert!(IFileReader::open(b"tiny", &codec).is_err());
        let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        // Truncated body.
        assert!(IFileReader::open(&seg.data[..seg.data.len() - 2], &codec).is_err());
        // Bad magic.
        let mut bad = seg.data.clone();
        bad[0] = b'X';
        assert!(IFileReader::open(&bad, &codec).is_err());
        // Bad framing tag.
        let mut bad = seg.data.clone();
        bad[5] = 9;
        assert!(IFileReader::open(&bad, &codec).is_err());
    }

    #[test]
    fn cursor_streams_the_same_records_as_the_eager_reader() {
        for framing in [Framing::SequenceFile, Framing::IFile] {
            let codec: Arc<dyn Codec> = Arc::new(DeflateCodec::new());
            let mut w = IFileWriter::new(framing, codec.clone());
            for i in 0..500u32 {
                w.append(&i.to_be_bytes(), format!("value-{i}").as_bytes());
            }
            let seg = w.close();
            let raw = RawSegment::open(&seg.data, codec.as_ref()).unwrap();
            let mut cursor = raw.cursor();
            let mut streamed = Vec::new();
            while let Some((k, v)) = cursor.next().unwrap() {
                streamed.push(KvPair::new(k.to_vec(), v.to_vec()));
            }
            let eager = IFileReader::open(&seg.data, codec.as_ref())
                .unwrap()
                .into_records();
            assert_eq!(streamed, eager);
            assert_eq!(streamed.len(), 500);
        }
    }

    #[test]
    fn cursor_rejects_truncated_segments() {
        let codec = IdentityCodec;
        // With the CRC trailer (default), truncation is caught at open.
        let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        assert!(matches!(
            RawSegment::open(&seg.data[..seg.data.len() - 2], &codec),
            Err(MrError::Checksum(_))
        ));
        // Without a trailer, the cursor itself must reject the short body.
        let mut w = IFileWriter::without_trailer(Framing::IFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        let raw = RawSegment::open(&seg.data[..seg.data.len() - 2], &codec).unwrap();
        let mut cursor = raw.cursor();
        assert!(cursor.next().is_err());
    }

    #[test]
    fn trailer_roundtrips_and_excludes_itself_from_accounting() {
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut w = IFileWriter::new(Framing::IFile, codec.clone());
        w.append(b"key", b"value");
        let seg = w.close();
        // Materialized bytes include the 4-byte trailer; raw accounting
        // does not, so framing arithmetic is unchanged.
        assert_eq!(seg.data.len() as u64, seg.raw_bytes + TRAILER_LEN as u64);
        assert_eq!(seg.data[4], VERSION_CRC);
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(
            r.into_records(),
            vec![KvPair::new(b"key".to_vec(), b"value".to_vec())]
        );
    }

    #[test]
    fn trailer_detects_single_bit_flips_anywhere_in_the_body() {
        let codec = IdentityCodec;
        let mut w = IFileWriter::new(Framing::SequenceFile, Arc::new(IdentityCodec));
        for i in 0..20u32 {
            w.append(&i.to_be_bytes(), b"payload");
        }
        let seg = w.close();
        for byte in HEADER_LEN..seg.data.len() {
            let mut corrupt = seg.data.clone();
            corrupt[byte] ^= 0x40;
            assert!(
                RawSegment::open(&corrupt, &codec).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn plain_segments_still_open_without_a_trailer() {
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut w = IFileWriter::without_trailer(Framing::IFile, codec.clone());
        w.append(b"key", b"value");
        let seg = w.close();
        assert_eq!(seg.data[4], VERSION_PLAIN);
        assert_eq!(seg.data.len() as u64, seg.raw_bytes);
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(r.into_records().len(), 1);
    }

    #[test]
    fn sequencefile_record_length_is_validated() {
        let codec = IdentityCodec;
        let mut w = IFileWriter::without_trailer(Framing::SequenceFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        // Inflate the 4-byte record length; the parsed vints disagree.
        let mut bad = seg.data.clone();
        bad[HEADER_LEN + 3] ^= 0x01;
        assert!(IFileReader::open(&bad, &codec).is_err());
    }

    #[test]
    fn malformed_vint_magnitude_errors_instead_of_panicking() {
        // Tag -128 → negative, 8 data bytes, all 0xFF: magnitude overflows
        // i64 and must surface as an error.
        let mut buf = vec![0x80u8]; // -128 as u8
        buf.extend_from_slice(&[0xFF; 8]);
        assert!(read_vint(&buf).is_err());
        // Same via the cursor: a hand-built v1 segment with that vint as
        // the key length.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.push(VERSION_PLAIN);
        raw.push(Framing::IFile.tag());
        raw.extend_from_slice(&buf);
        raw.push(0); // value length
        let seg = RawSegment::open(&raw, &IdentityCodec).unwrap();
        let mut cursor = seg.cursor();
        assert!(cursor.next().is_err());
    }

    #[test]
    fn large_keys_use_multibyte_vints() {
        let pair = KvPair::new(vec![1u8; 1000], vec![2u8; 4]);
        let seg = roundtrip(Framing::IFile, &[pair]);
        // vint(1000) = 3 bytes, vint(4) = 1 byte.
        assert_eq!(seg.framing_bytes(), 4);
    }

    // ---- v3 (front-coded block) tests ----

    use crate::keysem::DefaultKeySemantics;

    fn ks() -> Arc<dyn KeySemantics> {
        Arc::new(DefaultKeySemantics)
    }

    fn sorted_pairs(n: u32) -> Vec<KvPair> {
        (0..n)
            .map(|i| {
                KvPair::new(
                    format!("station-{:06}", i).into_bytes(),
                    i.to_be_bytes().to_vec(),
                )
            })
            .collect()
    }

    fn v3_segment(pairs: &[KvPair], budget: usize) -> Segment {
        let mut w =
            IFileWriter::v3_with_budget(Framing::IFile, Arc::new(IdentityCodec), ks(), budget);
        for p in pairs {
            w.append_pair(p);
        }
        w.close()
    }

    #[test]
    fn v3_roundtrips_through_reader_and_block_cursor() {
        let pairs = sorted_pairs(500);
        let seg = v3_segment(&pairs, 256);
        assert_eq!(seg.data[4], VERSION_BLOCK);
        assert!(seg.blocks > 1, "tiny budget must produce many blocks");
        let r = IFileReader::open(&seg.data, &IdentityCodec).unwrap();
        assert_eq!(r.into_records(), pairs);
        let raw = RawSegment::open(&seg.data, &IdentityCodec).unwrap();
        assert!(raw.is_block_format());
        assert_eq!(raw.blocks() as u64, seg.blocks);
        assert_eq!(raw.record_count().unwrap(), 500);
        let mut cursor = raw.block_cursor();
        let mut streamed = Vec::new();
        while let Some((k, v)) = cursor.next().unwrap() {
            streamed.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        assert_eq!(streamed, pairs);
    }

    #[test]
    fn v3_decodes_byte_identical_records_to_v2() {
        let pairs = sorted_pairs(300);
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut v2 = IFileWriter::new(Framing::IFile, codec.clone());
        for p in &pairs {
            v2.append_pair(p);
        }
        let v2 = IFileReader::open(&v2.close().data, codec.as_ref()).unwrap();
        let v3 = v3_segment(&pairs, 512);
        let v3 = IFileReader::open(&v3.data, codec.as_ref()).unwrap();
        assert_eq!(v2.into_records(), v3.into_records());
    }

    #[test]
    fn v3_front_coding_shrinks_shared_prefix_keys() {
        let pairs = sorted_pairs(1000);
        let v3 = v3_segment(&pairs, DEFAULT_BLOCK_BUDGET);
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut v2 = IFileWriter::new(Framing::IFile, codec);
        for p in &pairs {
            v2.append_pair(p);
        }
        let v2 = v2.close();
        assert_eq!(v2.key_saved_bytes(), 0);
        assert!(v3.key_saved_bytes() > 0);
        assert!(
            v3.raw_bytes < v2.raw_bytes,
            "front coding must shrink shared-prefix keys: v3 {} vs v2 {}",
            v3.raw_bytes,
            v2.raw_bytes
        );
        // The byte-split identity the reports build on.
        assert_eq!(
            v3.key_bytes + v3.value_bytes + v3.framing_bytes() + HEADER_LEN as u64,
            v3.raw_bytes + v3.key_saved_bytes()
        );
    }

    #[test]
    fn v3_empty_segment_roundtrips() {
        let seg = v3_segment(&[], DEFAULT_BLOCK_BUDGET);
        assert_eq!(seg.records, 0);
        assert_eq!(seg.blocks, 0);
        let raw = RawSegment::open(&seg.data, &IdentityCodec).unwrap();
        assert_eq!(raw.record_count().unwrap(), 0);
        let mut cursor = raw.block_cursor();
        assert!(cursor.next().unwrap().is_none());
    }

    #[test]
    fn v3_bit_flips_detected_by_segment_trailer() {
        let seg = v3_segment(&sorted_pairs(50), 128);
        for byte in HEADER_LEN..seg.data.len() {
            let mut corrupt = seg.data.clone();
            corrupt[byte] ^= 0x10;
            assert!(
                RawSegment::open(&corrupt, &IdentityCodec).is_err(),
                "v3 bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn v3_block_crc_catches_corruption_behind_a_regenerated_trailer() {
        // An attacker (or a buggy copy path) who fixes up the outer
        // trailer still cannot sneak a corrupted block past the
        // per-block CRC.
        let seg = v3_segment(&sorted_pairs(200), 128);
        let mut corrupt = seg.data[..seg.data.len() - TRAILER_LEN].to_vec();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0x01; // somewhere inside the blocks
        let crc = crc32c(&corrupt);
        corrupt.extend_from_slice(&crc.to_be_bytes());
        let Ok(raw) = RawSegment::open(&corrupt, &IdentityCodec) else {
            return; // flipped an index byte: caught even earlier
        };
        let mut cursor = raw.block_cursor();
        let mut res = Ok(true);
        while let Ok(true) = res {
            res = cursor.advance();
        }
        assert!(res.is_err(), "corrupt block body went undetected");
    }

    #[test]
    fn v3_take_block_splices_into_a_new_segment() {
        let pairs = sorted_pairs(400);
        let seg = v3_segment(&pairs, 256);
        let raw = RawSegment::open(&seg.data, &IdentityCodec).unwrap();
        let mut w = IFileWriter::v3_with_budget(Framing::IFile, Arc::new(IdentityCodec), ks(), 256);
        let mut cursor = raw.block_cursor();
        assert!(cursor.advance().unwrap());
        let mut copied_records = 0;
        while cursor.at_block_start() {
            let blk = cursor.take_block().unwrap();
            blk.for_each_record(|_, _| {}).unwrap(); // self-contained
            copied_records += blk.records;
            w.append_encoded_block(&blk).unwrap();
        }
        assert_eq!(copied_records, 400, "every block is liftable in turn");
        let out = w.close();
        assert_eq!(out.records, seg.records);
        assert_eq!(out.key_bytes, seg.key_bytes);
        assert_eq!(out.stored_key_bytes, seg.stored_key_bytes);
        let r = IFileReader::open(&out.data, &IdentityCodec).unwrap();
        assert_eq!(r.into_records(), pairs);
    }

    #[test]
    fn v3_shared_prefixes_longer_than_255_bytes() {
        let stem = vec![b'p'; 300];
        let pairs: Vec<KvPair> = (0..50u32)
            .map(|i| {
                let mut k = stem.clone();
                k.extend_from_slice(&i.to_be_bytes());
                KvPair::new(k, vec![i as u8])
            })
            .collect();
        let seg = v3_segment(&pairs, 64);
        // 49 non-fence records save ≥ 300 bytes each.
        assert!(seg.key_saved_bytes() >= 300 * 40);
        let r = IFileReader::open(&seg.data, &IdentityCodec).unwrap();
        assert_eq!(r.into_records(), pairs);
    }

    #[test]
    fn v3_truncations_always_error() {
        let seg = v3_segment(&sorted_pairs(40), 128);
        for keep in 0..seg.data.len() {
            assert!(
                IFileReader::open(&seg.data[..keep], &IdentityCodec).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }
}

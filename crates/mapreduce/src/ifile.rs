//! The IFile-style intermediate record format.
//!
//! Hadoop materializes map output as framed `(key, value)` records;
//! "the file format used by Hadoop adds a non-zero overhead per key/value
//! pair" (§IV-D) — overhead the paper's Fig. 8 shows aggregation
//! mitigating. Two framings are supported, matching the two overheads
//! visible in the paper:
//!
//! * [`Framing::SequenceFile`] — 4-byte record length + key/value vints:
//!   6 bytes/record for small records. With a 6-byte file header this
//!   reproduces the §I arithmetic exactly: a 100³ float grid with
//!   4-int keys gives 26,000,006 bytes; with `windspeed1` keys,
//!   33,000,006 bytes.
//! * [`Framing::IFile`] — key/value vints only: 2 bytes/record, the
//!   1.91 MB "file overhead" bar of Fig. 8 (10⁶ records × 2 B).
//!
//! A writer wraps a [`Codec`]: `close()` compresses everything written
//! and reports both raw and materialized sizes.

use crate::error::MrError;
use crate::keysem::KeySemantics;
use crate::record::KvPair;
use scihadoop_compress::{crc32c, Codec};
use std::sync::Arc;

/// File magic ("SciHadoop InterFile") + version + framing byte = 6-byte
/// header.
const HEADER_LEN: usize = 6;
const MAGIC: &[u8; 4] = b"SHIF";
/// Format version without an integrity trailer (the original layout).
const VERSION_PLAIN: u8 = 1;
/// Format version whose raw stream ends in a CRC-32 trailer.
const VERSION_CRC: u8 = 2;
/// Big-endian CRC-32 of everything before it (header + records).
const TRAILER_LEN: usize = 4;

/// Record framing variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// 4-byte big-endian record length, then key/value vints.
    SequenceFile,
    /// Key/value vints only (Hadoop's actual IFile framing).
    IFile,
}

impl Framing {
    fn tag(self) -> u8 {
        match self {
            Framing::SequenceFile => 0,
            Framing::IFile => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, MrError> {
        match tag {
            0 => Ok(Framing::SequenceFile),
            1 => Ok(Framing::IFile),
            t => Err(MrError::Intermediate(format!("unknown framing {t}"))),
        }
    }

    /// Framing bytes for a record with the given key/value sizes.
    pub fn overhead(self, key_len: usize, value_len: usize) -> usize {
        let vints = vint_len(key_len as i64) + vint_len(value_len as i64);
        match self {
            Framing::SequenceFile => 4 + vints,
            Framing::IFile => vints,
        }
    }

    /// Constant per-file overhead.
    pub fn file_overhead(self) -> usize {
        HEADER_LEN
    }
}

/// Hadoop-compatible vint length (see `scihadoop-grid::writable` for the
/// wire format; duplicated here so the engine stays substrate-free).
pub fn vint_len(v: i64) -> usize {
    if (-112..=127).contains(&v) {
        1
    } else {
        let m = if v < 0 { !v } else { v };
        1 + (8 - (m.leading_zeros() as usize) / 8)
    }
}

fn write_vint(out: &mut Vec<u8>, v: i64) {
    if (-112..=127).contains(&v) {
        out.push(v as u8);
        return;
    }
    let (mut tag, mag) = if v < 0 { (-120i64, !v) } else { (-112i64, v) };
    let data_bytes = (8 - (mag.leading_zeros() as usize) / 8).max(1);
    tag -= data_bytes as i64;
    out.push(tag as u8);
    for i in (0..data_bytes).rev() {
        out.push((mag >> (8 * i)) as u8);
    }
}

fn read_vint(buf: &[u8]) -> Result<(i64, usize), MrError> {
    let first = *buf
        .first()
        .ok_or_else(|| MrError::Intermediate("empty vint".into()))? as i8;
    if first >= -112 {
        return Ok((first as i64, 1));
    }
    let (negative, data_bytes) = if first >= -120 {
        (false, (-113 - first as i64) as usize + 1)
    } else {
        (true, (-121 - first as i64) as usize + 1)
    };
    if buf.len() < 1 + data_bytes {
        return Err(MrError::Intermediate("short vint".into()));
    }
    // Accumulate in u64: 8 data bytes fill exactly 64 bits, so the shift
    // can never overflow. A magnitude above i64::MAX has no i64
    // representation — a malformed encoding, not a panic.
    let mut mag = 0u64;
    for &b in &buf[1..1 + data_bytes] {
        mag = (mag << 8) | b as u64;
    }
    if mag > i64::MAX as u64 {
        return Err(MrError::Intermediate(format!(
            "vint magnitude {mag:#x} out of i64 range"
        )));
    }
    let mag = mag as i64;
    Ok((if negative { !mag } else { mag }, 1 + data_bytes))
}

/// Writes framed records into an in-memory segment, compressing on close.
pub struct IFileWriter {
    framing: Framing,
    codec: Arc<dyn Codec>,
    buf: Vec<u8>,
    records: u64,
    key_bytes: u64,
    value_bytes: u64,
    trailer: bool,
}

/// A closed intermediate segment plus its size accounting.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Compressed (materialized) bytes — what would hit disk and network.
    pub data: Vec<u8>,
    /// Raw framed size before compression.
    pub raw_bytes: u64,
    /// Records contained.
    pub records: u64,
    /// Raw key bytes (excluding framing).
    pub key_bytes: u64,
    /// Raw value bytes.
    pub value_bytes: u64,
    /// Nanoseconds spent compressing.
    pub compress_nanos: u64,
}

impl Segment {
    /// Materialized size in bytes.
    pub fn materialized_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Per-record framing overhead bytes (raw minus keys, values, and the
    /// constant file header).
    pub fn framing_bytes(&self) -> u64 {
        let payload = self.key_bytes + self.value_bytes + HEADER_LEN as u64;
        debug_assert!(
            self.raw_bytes >= payload,
            "segment accounting invariant violated: raw {} < keys {} + values {} + header {}",
            self.raw_bytes,
            self.key_bytes,
            self.value_bytes,
            HEADER_LEN
        );
        self.raw_bytes.saturating_sub(payload)
    }
}

impl IFileWriter {
    /// Open a writer with the given framing and codec. Segments carry a
    /// CRC-32 trailer (format version 2) so shuffle-side corruption is
    /// detected at open time instead of surfacing as garbage records.
    pub fn new(framing: Framing, codec: Arc<dyn Codec>) -> Self {
        Self::with_trailer(framing, codec, true)
    }

    /// Open a writer that emits the original version-1 layout with no
    /// integrity trailer (legacy format; corruption tests exercise the
    /// parser's behavior without CRC protection through this).
    pub fn without_trailer(framing: Framing, codec: Arc<dyn Codec>) -> Self {
        Self::with_trailer(framing, codec, false)
    }

    fn with_trailer(framing: Framing, codec: Arc<dyn Codec>, trailer: bool) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(MAGIC);
        buf.push(if trailer { VERSION_CRC } else { VERSION_PLAIN });
        buf.push(framing.tag());
        debug_assert_eq!(buf.len(), HEADER_LEN);
        IFileWriter {
            framing,
            codec,
            buf,
            records: 0,
            key_bytes: 0,
            value_bytes: 0,
            trailer,
        }
    }

    /// Append one record.
    pub fn append(&mut self, key: &[u8], value: &[u8]) {
        match self.framing {
            Framing::SequenceFile => {
                let body = vint_len(key.len() as i64)
                    + vint_len(value.len() as i64)
                    + key.len()
                    + value.len();
                self.buf.extend_from_slice(&(body as u32).to_be_bytes());
            }
            Framing::IFile => {}
        }
        write_vint(&mut self.buf, key.len() as i64);
        write_vint(&mut self.buf, value.len() as i64);
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.records += 1;
        self.key_bytes += key.len() as u64;
        self.value_bytes += value.len() as u64;
    }

    /// Append a pair.
    pub fn append_pair(&mut self, pair: &KvPair) {
        self.append(&pair.key, &pair.value);
    }

    /// Raw bytes buffered so far (including header).
    pub fn raw_len(&self) -> usize {
        self.buf.len()
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Compress and seal the segment.
    pub fn close(mut self) -> Segment {
        // Size accounting excludes the trailer: `raw_bytes` keeps meaning
        // "header + framed records", so the paper's byte arithmetic (and
        // every counter invariant built on it) is identical with and
        // without integrity checking.
        let raw_bytes = self.buf.len() as u64;
        if self.trailer {
            let crc = crc32c(&self.buf);
            self.buf.extend_from_slice(&crc.to_be_bytes());
        }
        let t0 = crate::clock::thread_cpu_nanos();
        let data = self.codec.compress(&self.buf);
        let compress_nanos = crate::clock::since(t0);
        crate::obs::hist_many(&[
            (crate::obs::Metric::CompressInBytes, raw_bytes),
            (crate::obs::Metric::CompressOutBytes, data.len() as u64),
            (
                crate::obs::Metric::CompressNsPerKib,
                compress_nanos.saturating_mul(1024) / raw_bytes.max(1),
            ),
        ]);
        Segment {
            data,
            raw_bytes,
            records: self.records,
            key_bytes: self.key_bytes,
            value_bytes: self.value_bytes,
            compress_nanos,
        }
    }
}

/// A decompressed segment whose records are parsed lazily through
/// [`RecordCursor`]s — the reducer's streaming merge reads records
/// straight out of this buffer without materializing owned pairs.
pub struct RawSegment {
    raw: Vec<u8>,
    framing: Framing,
    /// End of the record region (excludes a version-2 CRC trailer).
    body_end: usize,
    /// Nanoseconds spent decompressing.
    pub decompress_nanos: u64,
}

impl RawSegment {
    /// Decompress a segment, validate its header, and — for version-2
    /// segments — verify the CRC-32 trailer over everything before it.
    /// A trailer mismatch is a [`MrError::Checksum`], distinguishable
    /// from structural parse errors so the runner can count it.
    pub fn open(segment: &[u8], codec: &dyn Codec) -> Result<Self, MrError> {
        let t0 = crate::clock::thread_cpu_nanos();
        let raw = codec.decompress(segment)?;
        let decompress_nanos = crate::clock::since(t0);
        crate::obs::hist(
            crate::obs::Metric::DecompressNsPerKib,
            decompress_nanos.saturating_mul(1024) / (raw.len() as u64).max(1),
        );
        if raw.len() < HEADER_LEN || &raw[..4] != MAGIC {
            return Err(MrError::Intermediate("bad segment header".into()));
        }
        let body_end = match raw[4] {
            VERSION_PLAIN => raw.len(),
            VERSION_CRC => {
                let body_end = raw
                    .len()
                    .checked_sub(TRAILER_LEN)
                    .filter(|&e| e >= HEADER_LEN)
                    .ok_or_else(|| MrError::Checksum("segment too short for CRC trailer".into()))?;
                let stored = u32::from_be_bytes(raw[body_end..].try_into().unwrap());
                let actual = crc32c(&raw[..body_end]);
                if stored != actual {
                    return Err(MrError::Checksum(format!(
                        "segment CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
                    )));
                }
                body_end
            }
            v => return Err(MrError::Intermediate(format!("bad version {v}"))),
        };
        let framing = Framing::from_tag(raw[5])?;
        Ok(RawSegment {
            raw,
            framing,
            body_end,
            decompress_nanos,
        })
    }

    /// A cursor over the records, borrowing this segment's buffer.
    pub fn cursor(&self) -> RecordCursor<'_> {
        RecordCursor {
            raw: &self.raw[..self.body_end],
            framing: self.framing,
            pos: HEADER_LEN,
        }
    }

    /// A cursor that derives each record's sort prefix as it parses (see
    /// [`PrefixedCursor`]). Merge consumers cache the `u64` and compare
    /// prefixes instead of keys at every tree/heap operation.
    pub fn prefixed_cursor<'a>(&'a self, ks: &'a dyn KeySemantics) -> PrefixedCursor<'a> {
        PrefixedCursor {
            cursor: self.cursor(),
            ks,
        }
    }
}

/// A `(key, value)` record borrowed from a decompressed segment buffer.
pub type RecordSlices<'a> = (&'a [u8], &'a [u8]);

/// Lazy record parser over a [`RawSegment`]'s buffer; yields borrowed
/// `(key, value)` slices in file order.
pub struct RecordCursor<'a> {
    raw: &'a [u8],
    framing: Framing,
    pos: usize,
}

impl<'a> RecordCursor<'a> {
    /// The next record, or `None` at end of segment.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next(&mut self) -> Result<Option<RecordSlices<'a>>, MrError> {
        if self.pos >= self.raw.len() {
            return Ok(None);
        }
        let mut rec_len = None;
        if self.framing == Framing::SequenceFile {
            if self.raw.len() - self.pos < 4 {
                return Err(MrError::Intermediate("short record length".into()));
            }
            rec_len = Some(u32::from_be_bytes(
                self.raw[self.pos..self.pos + 4].try_into().unwrap(),
            ));
            self.pos += 4;
        }
        let (klen, kused) = read_vint(&self.raw[self.pos..])?;
        self.pos += kused;
        let (vlen, vused) = read_vint(&self.raw[self.pos..])?;
        self.pos += vused;
        let (klen, vlen) = (
            usize::try_from(klen)
                .map_err(|_| MrError::Intermediate("negative key length".into()))?,
            usize::try_from(vlen)
                .map_err(|_| MrError::Intermediate("negative value length".into()))?,
        );
        if let Some(rec_len) = rec_len {
            // The 4-byte record length must agree with the parsed sizes —
            // u64 arithmetic so adversarial lengths cannot overflow here.
            let expected = kused as u64 + vused as u64 + klen as u64 + vlen as u64;
            if rec_len as u64 != expected {
                return Err(MrError::Intermediate(format!(
                    "record length {rec_len} disagrees with key/value sizes ({expected})"
                )));
            }
        }
        let body = klen
            .checked_add(vlen)
            .and_then(|b| b.checked_add(self.pos))
            .ok_or_else(|| MrError::Intermediate("record body length overflows".into()))?;
        if body > self.raw.len() {
            return Err(MrError::Intermediate("short record body".into()));
        }
        let key = &self.raw[self.pos..self.pos + klen];
        self.pos += klen;
        let value = &self.raw[self.pos..self.pos + vlen];
        self.pos += vlen;
        Ok(Some((key, value)))
    }
}

/// A [`RecordCursor`] that pairs each record with its
/// [`KeySemantics::sort_prefix`], computed exactly once per record at
/// parse time. This keeps the prefix adjacent to the record slices for
/// the merge's loser tree, whose matches then touch only cached `u64`s
/// on the non-tie fast path.
pub struct PrefixedCursor<'a> {
    cursor: RecordCursor<'a>,
    ks: &'a dyn KeySemantics,
}

impl<'a> PrefixedCursor<'a> {
    /// The next `(sort_prefix, record)`, or `None` at end of segment.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next(&mut self) -> Result<Option<(u64, RecordSlices<'a>)>, MrError> {
        Ok(self
            .cursor
            .next()?
            .map(|rec| (self.ks.sort_prefix(rec.0), rec)))
    }
}

/// Reads a segment back into owned records (reference path; the engine
/// itself streams through [`RawSegment`]).
pub struct IFileReader {
    records: Vec<KvPair>,
    /// Nanoseconds spent decompressing.
    pub decompress_nanos: u64,
}

impl IFileReader {
    /// Decompress and parse a segment.
    pub fn open(segment: &[u8], codec: &dyn Codec) -> Result<Self, MrError> {
        let seg = RawSegment::open(segment, codec)?;
        let mut records = Vec::new();
        let mut cursor = seg.cursor();
        while let Some((key, value)) = cursor.next()? {
            records.push(KvPair::new(key.to_vec(), value.to_vec()));
        }
        Ok(IFileReader {
            records,
            decompress_nanos: seg.decompress_nanos,
        })
    }

    /// The records, in file order.
    pub fn into_records(self) -> Vec<KvPair> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scihadoop_compress::{DeflateCodec, IdentityCodec};

    fn roundtrip(framing: Framing, pairs: &[KvPair]) -> Segment {
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut w = IFileWriter::new(framing, codec.clone());
        for p in pairs {
            w.append_pair(p);
        }
        let seg = w.close();
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(r.into_records(), pairs);
        seg
    }

    #[test]
    fn empty_segment() {
        let seg = roundtrip(Framing::IFile, &[]);
        assert_eq!(seg.records, 0);
        assert_eq!(seg.raw_bytes, HEADER_LEN as u64);
    }

    #[test]
    fn sequencefile_framing_matches_intro_arithmetic() {
        // One record, 16-byte key + 4-byte value: 6 bytes framing → 26
        // bytes/record, the paper's §I number.
        let pair = KvPair::new(vec![1u8; 16], vec![2u8; 4]);
        let seg = roundtrip(Framing::SequenceFile, std::slice::from_ref(&pair));
        assert_eq!(
            seg.raw_bytes,
            (HEADER_LEN + 26) as u64,
            "16B key + 4B value must cost 26 bytes + header"
        );
        // 23-byte key (windspeed1 layout) → 33 bytes/record.
        let pair = KvPair::new(vec![1u8; 23], vec![2u8; 4]);
        let seg = roundtrip(Framing::SequenceFile, &[pair]);
        assert_eq!(seg.raw_bytes, (HEADER_LEN + 33) as u64);
    }

    #[test]
    fn ifile_framing_is_two_bytes_for_small_records() {
        let pair = KvPair::new(vec![1u8; 12], vec![2u8; 4]);
        let seg = roundtrip(Framing::IFile, &[pair]);
        assert_eq!(seg.raw_bytes, (HEADER_LEN + 18) as u64);
        assert_eq!(seg.framing_bytes(), 2);
    }

    #[test]
    fn overhead_fn_matches_writer() {
        for framing in [Framing::SequenceFile, Framing::IFile] {
            for (k, v) in [(0usize, 0usize), (16, 4), (200, 1), (23, 4)] {
                let pair = KvPair::new(vec![0u8; k], vec![0u8; v]);
                let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
                let mut w = IFileWriter::new(framing, codec);
                let before = w.raw_len();
                w.append_pair(&pair);
                let actual = w.raw_len() - before - k - v;
                assert_eq!(
                    actual,
                    framing.overhead(k, v),
                    "framing {framing:?} k={k} v={v}"
                );
            }
        }
    }

    #[test]
    fn accounting_separates_keys_values_framing() {
        let pairs: Vec<KvPair> = (0..100u32)
            .map(|i| KvPair::new(i.to_be_bytes().to_vec(), vec![7u8; 8]))
            .collect();
        let seg = roundtrip(Framing::IFile, &pairs);
        assert_eq!(seg.key_bytes, 400);
        assert_eq!(seg.value_bytes, 800);
        assert_eq!(seg.framing_bytes(), 200);
        assert_eq!(seg.records, 100);
    }

    #[test]
    fn compressing_codec_shrinks_materialized_bytes() {
        let codec: Arc<dyn Codec> = Arc::new(DeflateCodec::new());
        let mut w = IFileWriter::new(Framing::IFile, codec.clone());
        for i in 0..2000u32 {
            w.append(&i.to_be_bytes(), &[0u8; 4]);
        }
        let seg = w.close();
        assert!(seg.materialized_bytes() < seg.raw_bytes / 2);
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(r.into_records().len(), 2000);
    }

    #[test]
    fn reader_rejects_garbage() {
        let codec = IdentityCodec;
        assert!(IFileReader::open(b"tiny", &codec).is_err());
        let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        // Truncated body.
        assert!(IFileReader::open(&seg.data[..seg.data.len() - 2], &codec).is_err());
        // Bad magic.
        let mut bad = seg.data.clone();
        bad[0] = b'X';
        assert!(IFileReader::open(&bad, &codec).is_err());
        // Bad framing tag.
        let mut bad = seg.data.clone();
        bad[5] = 9;
        assert!(IFileReader::open(&bad, &codec).is_err());
    }

    #[test]
    fn cursor_streams_the_same_records_as_the_eager_reader() {
        for framing in [Framing::SequenceFile, Framing::IFile] {
            let codec: Arc<dyn Codec> = Arc::new(DeflateCodec::new());
            let mut w = IFileWriter::new(framing, codec.clone());
            for i in 0..500u32 {
                w.append(&i.to_be_bytes(), format!("value-{i}").as_bytes());
            }
            let seg = w.close();
            let raw = RawSegment::open(&seg.data, codec.as_ref()).unwrap();
            let mut cursor = raw.cursor();
            let mut streamed = Vec::new();
            while let Some((k, v)) = cursor.next().unwrap() {
                streamed.push(KvPair::new(k.to_vec(), v.to_vec()));
            }
            let eager = IFileReader::open(&seg.data, codec.as_ref())
                .unwrap()
                .into_records();
            assert_eq!(streamed, eager);
            assert_eq!(streamed.len(), 500);
        }
    }

    #[test]
    fn cursor_rejects_truncated_segments() {
        let codec = IdentityCodec;
        // With the CRC trailer (default), truncation is caught at open.
        let mut w = IFileWriter::new(Framing::IFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        assert!(matches!(
            RawSegment::open(&seg.data[..seg.data.len() - 2], &codec),
            Err(MrError::Checksum(_))
        ));
        // Without a trailer, the cursor itself must reject the short body.
        let mut w = IFileWriter::without_trailer(Framing::IFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        let raw = RawSegment::open(&seg.data[..seg.data.len() - 2], &codec).unwrap();
        let mut cursor = raw.cursor();
        assert!(cursor.next().is_err());
    }

    #[test]
    fn trailer_roundtrips_and_excludes_itself_from_accounting() {
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut w = IFileWriter::new(Framing::IFile, codec.clone());
        w.append(b"key", b"value");
        let seg = w.close();
        // Materialized bytes include the 4-byte trailer; raw accounting
        // does not, so framing arithmetic is unchanged.
        assert_eq!(seg.data.len() as u64, seg.raw_bytes + TRAILER_LEN as u64);
        assert_eq!(seg.data[4], VERSION_CRC);
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(
            r.into_records(),
            vec![KvPair::new(b"key".to_vec(), b"value".to_vec())]
        );
    }

    #[test]
    fn trailer_detects_single_bit_flips_anywhere_in_the_body() {
        let codec = IdentityCodec;
        let mut w = IFileWriter::new(Framing::SequenceFile, Arc::new(IdentityCodec));
        for i in 0..20u32 {
            w.append(&i.to_be_bytes(), b"payload");
        }
        let seg = w.close();
        for byte in HEADER_LEN..seg.data.len() {
            let mut corrupt = seg.data.clone();
            corrupt[byte] ^= 0x40;
            assert!(
                RawSegment::open(&corrupt, &codec).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn plain_segments_still_open_without_a_trailer() {
        let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
        let mut w = IFileWriter::without_trailer(Framing::IFile, codec.clone());
        w.append(b"key", b"value");
        let seg = w.close();
        assert_eq!(seg.data[4], VERSION_PLAIN);
        assert_eq!(seg.data.len() as u64, seg.raw_bytes);
        let r = IFileReader::open(&seg.data, codec.as_ref()).unwrap();
        assert_eq!(r.into_records().len(), 1);
    }

    #[test]
    fn sequencefile_record_length_is_validated() {
        let codec = IdentityCodec;
        let mut w = IFileWriter::without_trailer(Framing::SequenceFile, Arc::new(IdentityCodec));
        w.append(b"key", b"value");
        let seg = w.close();
        // Inflate the 4-byte record length; the parsed vints disagree.
        let mut bad = seg.data.clone();
        bad[HEADER_LEN + 3] ^= 0x01;
        assert!(IFileReader::open(&bad, &codec).is_err());
    }

    #[test]
    fn malformed_vint_magnitude_errors_instead_of_panicking() {
        // Tag -128 → negative, 8 data bytes, all 0xFF: magnitude overflows
        // i64 and must surface as an error.
        let mut buf = vec![0x80u8]; // -128 as u8
        buf.extend_from_slice(&[0xFF; 8]);
        assert!(read_vint(&buf).is_err());
        // Same via the cursor: a hand-built v1 segment with that vint as
        // the key length.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.push(VERSION_PLAIN);
        raw.push(Framing::IFile.tag());
        raw.extend_from_slice(&buf);
        raw.push(0); // value length
        let seg = RawSegment::open(&raw, &IdentityCodec).unwrap();
        let mut cursor = seg.cursor();
        assert!(cursor.next().is_err());
    }

    #[test]
    fn large_keys_use_multibyte_vints() {
        let pair = KvPair::new(vec![1u8; 1000], vec![2u8; 4]);
        let seg = roundtrip(Framing::IFile, &[pair]);
        // vint(1000) = 3 bytes, vint(4) = 1 byte.
        assert_eq!(seg.framing_bytes(), 4);
    }
}

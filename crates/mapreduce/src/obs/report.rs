//! Reporting pass: re-derive the paper's intermediate-data breakdowns
//! from the recorded histograms.
//!
//! Table I of the paper splits map output into key bytes vs. value
//! bytes to show that keys dominate; Table II tracks "map output
//! materialized bytes" across codecs. Both views fall out of the
//! per-segment histograms ([`Metric::SegKeyBytes`] and friends), which
//! are recorded at the same call site as the job counters — so
//! [`IntermediateBreakdown::reconcile`] can demand *exact* agreement,
//! not approximate.

use crate::counters::{Counter, CounterSnapshot};
use crate::obs::hist::Metric;
use crate::obs::trace::Trace;

/// Record one final materialized segment's byte split into the attached
/// recorder's histograms. This is the single observation site shared by
/// the engine (per final map-output segment) and the experiment harness
/// (per standalone segment), so every [`IntermediateBreakdown`] is
/// derived the same way. No-op when the thread is not attached.
pub fn observe_segment(
    key_bytes: u64,
    value_bytes: u64,
    framing_bytes: u64,
    key_saved_bytes: u64,
    raw_bytes: u64,
    materialized_bytes: u64,
) {
    crate::obs::hist_many(&[
        (Metric::SegKeyBytes, key_bytes),
        (Metric::SegValueBytes, value_bytes),
        (Metric::SegFramingBytes, framing_bytes),
        (Metric::SegKeySavedBytes, key_saved_bytes),
        (Metric::SegRawBytes, raw_bytes),
        (Metric::SegMaterializedBytes, materialized_bytes),
    ]);
}

/// Intermediate-data byte breakdown derived from segment histograms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntermediateBreakdown {
    /// Final map-output segments observed.
    pub segments: u64,
    /// Key bytes across all segments (Table I "keys" column).
    pub key_bytes: u64,
    /// Value bytes across all segments (Table I "values" column).
    pub value_bytes: u64,
    /// Per-record framing bytes across all segments.
    pub framing_bytes: u64,
    /// Key bytes removed by v3 front coding (0 when every segment is
    /// flat). `key_bytes` stays logical, so the raw identity is
    /// `raw = keys + values + framing + headers - key_saved`.
    pub key_saved_bytes: u64,
    /// Fixed per-segment header bytes.
    pub header_bytes: u64,
    /// Uncompressed segment bytes (keys + values + framing + headers,
    /// minus front-coding savings).
    pub raw_bytes: u64,
    /// Post-codec segment bytes (Table II "materialized").
    pub materialized_bytes: u64,
}

impl IntermediateBreakdown {
    /// Derive the breakdown from a finished trace's histograms.
    pub fn from_trace(trace: &Trace) -> IntermediateBreakdown {
        let h = |m: Metric| trace.hists.get(m).sum();
        IntermediateBreakdown {
            segments: trace.hists.get(Metric::SegRawBytes).count(),
            key_bytes: h(Metric::SegKeyBytes),
            value_bytes: h(Metric::SegValueBytes),
            framing_bytes: h(Metric::SegFramingBytes),
            key_saved_bytes: h(Metric::SegKeySavedBytes),
            header_bytes: crate::ifile::Framing::IFile.file_overhead() as u64
                * trace.hists.get(Metric::SegRawBytes).count(),
            raw_bytes: h(Metric::SegRawBytes),
            materialized_bytes: h(Metric::SegMaterializedBytes),
        }
    }

    /// Fraction of uncompressed record payload spent on keys — the
    /// paper's motivating observation (Table I).
    pub fn key_fraction(&self) -> f64 {
        let payload = self.key_bytes + self.value_bytes;
        if payload == 0 {
            return 0.0;
        }
        self.key_bytes as f64 / payload as f64
    }

    /// Materialized bytes over raw bytes (1.0 = incompressible), the
    /// Table II compression view.
    pub fn materialized_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 1.0;
        }
        self.materialized_bytes as f64 / self.raw_bytes as f64
    }

    /// Verify this histogram-derived breakdown agrees *exactly* with
    /// the job counters. Any mismatch means an instrumentation site
    /// drifted from its counter site.
    pub fn reconcile(&self, counters: &CounterSnapshot) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        let mut check = |what: &str, derived: u64, counter: u64| {
            if derived != counter {
                errs.push(format!(
                    "{what}: histogram-derived {derived} != counter {counter}"
                ));
            }
        };
        check(
            "segments",
            self.segments,
            counters.get(Counter::MapOutputSegments),
        );
        check(
            "key bytes",
            self.key_bytes,
            counters.get(Counter::MapOutputKeyBytes),
        );
        check(
            "value bytes",
            self.value_bytes,
            counters.get(Counter::MapOutputValueBytes),
        );
        check(
            "framing bytes",
            self.framing_bytes,
            counters.get(Counter::MapOutputFramingBytes),
        );
        check(
            "key saved bytes",
            self.key_saved_bytes,
            counters.get(Counter::MapOutputKeySavedBytes),
        );
        check(
            "raw bytes",
            self.raw_bytes,
            counters.get(Counter::MapOutputBytes),
        );
        check(
            "materialized bytes",
            self.materialized_bytes,
            counters.get(Counter::MapOutputMaterializedBytes),
        );
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Render as a JSON object (used inside the metrics report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"segments\": {}, \"key_bytes\": {}, \"value_bytes\": {}, \
             \"framing_bytes\": {}, \"key_saved_bytes\": {}, \"header_bytes\": {}, \
             \"raw_bytes\": {}, \"materialized_bytes\": {}, \"key_fraction\": {:.6}, \
             \"materialized_ratio\": {:.6}}}",
            self.segments,
            self.key_bytes,
            self.value_bytes,
            self.framing_bytes,
            self.key_saved_bytes,
            self.header_bytes,
            self.raw_bytes,
            self.materialized_bytes,
            self.key_fraction(),
            self.materialized_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;
    use crate::obs::Recorder;

    #[cfg(feature = "obs")]
    fn record_segment(key: u64, value: u64, framing: u64, saved: u64, materialized: u64) {
        let header = crate::ifile::Framing::IFile.file_overhead() as u64;
        crate::obs::hist_many(&[
            (Metric::SegKeyBytes, key),
            (Metric::SegValueBytes, value),
            (Metric::SegFramingBytes, framing),
            (Metric::SegKeySavedBytes, saved),
            (Metric::SegRawBytes, key + value + framing + header - saved),
            (Metric::SegMaterializedBytes, materialized),
        ]);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn derives_and_reconciles() {
        let rec = Recorder::new();
        let counters = Counters::new();
        {
            let _a = rec.attach("t");
            // Second segment is v3-like: 12 of its 50 key bytes saved.
            for (k, v, f, s, m) in [(100, 20, 8, 0, 60), (50, 10, 4, 12, 30)] {
                record_segment(k, v, f, s, m);
                let header = crate::ifile::Framing::IFile.file_overhead() as u64;
                counters.add(Counter::MapOutputKeyBytes, k);
                counters.add(Counter::MapOutputValueBytes, v);
                counters.add(Counter::MapOutputFramingBytes, f);
                counters.add(Counter::MapOutputKeySavedBytes, s);
                counters.add(Counter::MapOutputBytes, k + v + f + header - s);
                counters.add(Counter::MapOutputMaterializedBytes, m);
                counters.add(Counter::MapOutputSegments, 1);
            }
        }
        let trace = rec.finish();
        let b = IntermediateBreakdown::from_trace(&trace);
        assert_eq!(b.segments, 2);
        assert_eq!(b.key_bytes, 150);
        assert_eq!(b.value_bytes, 30);
        assert_eq!(b.key_saved_bytes, 12);
        assert_eq!(b.key_fraction(), 150.0 / 180.0);
        assert!(b.materialized_ratio() < 1.0);
        b.reconcile(&counters.snapshot()).unwrap();
    }

    #[test]
    #[cfg(feature = "obs")]
    fn reconcile_reports_drift() {
        let rec = Recorder::new();
        {
            let _a = rec.attach("t");
            record_segment(10, 10, 2, 1, 5);
        }
        let trace = rec.finish();
        let b = IntermediateBreakdown::from_trace(&trace);
        // counters left at zero: every byte check should fire
        let errs = b.reconcile(&Counters::new().snapshot()).unwrap_err();
        assert!(errs.len() >= 6, "drift detected: {errs:?}");
    }

    #[test]
    fn empty_trace_breakdown_is_zero() {
        let b = IntermediateBreakdown::from_trace(&Trace::empty());
        assert_eq!(b.segments, 0);
        assert_eq!(b.key_fraction(), 0.0);
        assert_eq!(b.materialized_ratio(), 1.0);
        b.reconcile(&Counters::new().snapshot()).unwrap();
    }
}

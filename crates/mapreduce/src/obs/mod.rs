//! Observability: job-wide tracing, histogram metrics, and exporters.
//!
//! The layer has three pieces, designed so the shuffle hot path pays
//! (nearly) nothing for them:
//!
//! * **Spans** ([`span!`](crate::span), [`SpanGuard`], [`Phase`]) —
//!   RAII guards metering the eight pipeline stages with wall time plus
//!   [thread-CPU time](crate::clock). Recording goes through a
//!   thread-local attachment into a per-thread sink; the sink's mutex
//!   is only ever contended during the final drain.
//! * **Histograms** ([`Histogram`], [`Metric`], [`hist`]) — fixed-size
//!   log2-bucketed distributions of record sizes, segment byte splits,
//!   codec throughput, merge fan-in and friends. No allocation on
//!   record.
//! * **Export** ([`chrome_trace_json`], [`metrics_json`],
//!   [`IntermediateBreakdown`]) — a Chrome `trace_event` file for
//!   timeline viewers and a self-describing JSON metrics report whose
//!   derived byte breakdown reconciles *exactly* against the job
//!   counters.
//!
//! Everything is scoped to a per-job [`Recorder`]; there is no global
//! collector, so parallel jobs (and parallel tests) cannot contaminate
//! each other. Building the crate with `--no-default-features` (i.e.
//! without the `obs` feature) compiles every recording hook down to a
//! no-op while keeping the API present.

mod drift;
mod export;
mod hist;
mod ledger;
mod report;
mod span;
mod trace;

pub use drift::{DriftReport, DriftRow};
pub use export::{chrome_trace_json, metrics_json, METRICS_SCHEMA};
pub use hist::{
    bucket_index, Histogram, Metric, MetricsBank, ALL_METRICS, NUM_BUCKETS, NUM_METRICS,
};
pub use ledger::{
    clock_name, host_cpus, LedgerConfig, LedgerHist, LedgerJob, LedgerRecord, LedgerSink,
    PhaseRollup, LEDGER_MAX_EXACT, LEDGER_SCHEMA,
};
pub use report::{observe_segment, IntermediateBreakdown};
pub use span::{Phase, SpanGuard, TraceEvent, ALL_PHASES, NUM_PHASES};
pub use trace::{hist, hist_many, recording, Attachment, Recorder, Trace, EVENT_CAPACITY};

//! Persistent per-run ledger: one self-describing JSON line per job.
//!
//! A [`LedgerRecord`] captures everything the cross-run tooling needs
//! to replay a finished job without the process that ran it: the full
//! job configuration, the final counters, every non-empty histogram,
//! per-phase wall/CPU rollups, the [clock kind](crate::clock) the
//! profile was taken with and the host's CPU count. Records append to a
//! JSON-lines file through a [`LedgerSink`] (see
//! [`JobConfig::with_ledger`](crate::JobConfig::with_ledger)); the
//! drift reporter and the perf-regression gate consume them.
//!
//! The encoding is deliberately conservative so that records roundtrip
//! through float-based JSON parsers (including `bench/src/json.rs`)
//! **byte-identically**:
//!
//! * every integer is clamped to [`LEDGER_MAX_EXACT`] (2^53), the
//!   largest magnitude where `f64` is still exact on every integer;
//! * histogram buckets are encoded as `[bucket_index, count]` pairs —
//!   the index (0..=64), never the bucket bounds, because the top
//!   bucket's bound is `u64::MAX`;
//! * key order is fixed and there is no insignificant whitespace, so
//!   re-encoding a parsed record reproduces the input bytes.

use crate::clock::{clock_kind, ClockKind};
use crate::counters::{CounterSnapshot, ALL_COUNTERS};
use crate::ifile::{Framing, IFileVersion};
use crate::job::{JobConfig, JobResult};
use crate::obs::export::esc;
use crate::obs::{Histogram, Metric, Trace, ALL_METRICS, ALL_PHASES, NUM_PHASES};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Schema tag written into every ledger record.
pub const LEDGER_SCHEMA: &str = "scihadoop.ledger.v1";

/// Largest integer the ledger writes: 2^53, the bound below which every
/// integer survives an `f64` roundtrip exactly. Counters past this are
/// clamped (a job that moved 8 PiB has other problems).
pub const LEDGER_MAX_EXACT: u64 = 1 << 53;

fn clamp(n: u64) -> u64 {
    n.min(LEDGER_MAX_EXACT)
}

/// This host's CPU count, as recorded in ledger records and BENCH files.
pub fn host_cpus() -> u64 {
    std::thread::available_parallelism().map_or(1, |p| p.get()) as u64
}

/// The stable name of the active [clock](crate::clock::clock_kind).
pub fn clock_name() -> &'static str {
    match clock_kind() {
        ClockKind::ThreadCpu => "thread_cpu",
        ClockKind::Wall => "wall",
    }
}

/// The job-configuration half of a ledger record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerConfig {
    /// Codec name (`Codec::name()`).
    pub codec: String,
    /// Block size in KiB for block-framed codecs; 0 when not applicable
    /// (the `Codec` trait does not expose it, so callers that framed the
    /// codec set it via [`JobConfig::with_ledger_block_kib`](crate::JobConfig::with_ledger_block_kib)).
    pub block_kib: u64,
    /// Reduce task count.
    pub num_reducers: u64,
    /// Concurrent map tasks.
    pub map_slots: u64,
    /// Concurrent reduce tasks.
    pub reduce_slots: u64,
    /// Map-side spill threshold in bytes.
    pub spill_buffer_bytes: u64,
    /// Record framing: `"ifile"` or `"sequence_file"`.
    pub framing: String,
    /// IFile layout version (1, 2 or 3).
    pub ifile_version: u64,
    /// Whether a combiner was configured.
    pub combiner: bool,
    /// Per-task retry budget.
    pub task_retries: u64,
    /// Fault-injection seed, when a fault plan was configured.
    pub fault_seed: Option<u64>,
}

/// Job-shape extras needed to rebuild a
/// [`JobStats`](crate::JobStats) from the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerJob {
    /// Map tasks that ran (input splits).
    pub num_maps: u64,
    /// Reduce tasks that ran.
    pub num_reducers: u64,
    /// Input payload bytes.
    pub input_bytes: u64,
    /// Wall-clock nanoseconds of the map phase.
    pub map_wall_nanos: u64,
    /// Wall-clock nanoseconds of the reduce phase.
    pub reduce_wall_nanos: u64,
}

/// Span rollup for one pipeline phase: how many spans ran and their
/// total wall/CPU time. All zero when the job ran without a recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseRollup {
    /// Spans recorded for the phase.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub wall_ns: u64,
    /// Total thread-CPU nanoseconds across those spans.
    pub cpu_ns: u64,
}

/// Compact encoding of one non-empty histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerHist {
    /// Which metric this distribution belongs to.
    pub metric: Metric,
    /// Sample count.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty log2 buckets as `(bucket_index, count)`, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl LedgerHist {
    /// Encode a histogram; `None` when it recorded nothing.
    pub fn from_histogram(metric: Metric, h: &Histogram) -> Option<LedgerHist> {
        if h.is_empty() {
            return None;
        }
        let buckets = h
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u8, n))
            .collect();
        Some(LedgerHist {
            metric,
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets,
        })
    }
}

/// One finished run, ready to append to a ledger file.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Caller-chosen run label (experiment or job name).
    pub label: String,
    /// `"thread_cpu"` or `"wall"` — which clock the CPU numbers used.
    pub clock: String,
    /// CPU count of the host that produced the record.
    pub host_cpus: u64,
    /// Full job configuration.
    pub config: LedgerConfig,
    /// Job-shape extras for `JobStats` reconstruction.
    pub job: LedgerJob,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Per-phase span rollups, in [`ALL_PHASES`] order.
    pub phases: [PhaseRollup; NUM_PHASES],
    /// Every non-empty histogram, in [`ALL_METRICS`] order.
    pub hists: Vec<LedgerHist>,
}

impl LedgerRecord {
    /// Build a record from a finished job. `trace` (a drained
    /// [`Recorder`](crate::Recorder)) contributes the phase rollups and
    /// histograms; without one those sections are empty but the record
    /// is still complete enough to replay through the cost model.
    pub fn from_run(
        label: &str,
        config: &JobConfig,
        result: &JobResult,
        trace: Option<&Trace>,
    ) -> LedgerRecord {
        let stats = &result.stats;
        let mut phases = [PhaseRollup::default(); NUM_PHASES];
        let mut hists = Vec::new();
        if let Some(trace) = trace {
            for (slot, phase) in phases.iter_mut().zip(ALL_PHASES) {
                *slot = PhaseRollup {
                    count: trace.span_count(phase) as u64,
                    wall_ns: trace.phase_wall_nanos(phase),
                    cpu_ns: trace.phase_cpu_nanos(phase),
                };
            }
            for metric in ALL_METRICS {
                if let Some(h) = LedgerHist::from_histogram(metric, trace.hists.get(metric)) {
                    hists.push(h);
                }
            }
        }
        LedgerRecord {
            label: label.to_string(),
            clock: clock_name().to_string(),
            host_cpus: host_cpus(),
            config: LedgerConfig {
                codec: config.codec.name().to_string(),
                block_kib: config.ledger_block_kib,
                num_reducers: config.num_reducers as u64,
                map_slots: config.map_slots as u64,
                reduce_slots: config.reduce_slots as u64,
                spill_buffer_bytes: config.spill_buffer_bytes as u64,
                framing: match config.framing {
                    Framing::SequenceFile => "sequence_file",
                    Framing::IFile => "ifile",
                }
                .to_string(),
                ifile_version: match config.ifile_version {
                    IFileVersion::V1 => 1,
                    IFileVersion::V2 => 2,
                    IFileVersion::V3 => 3,
                },
                combiner: config.combiner.is_some(),
                task_retries: config.task_retries as u64,
                fault_seed: config.faults.as_ref().map(|p| p.config().seed),
            },
            job: LedgerJob {
                num_maps: stats.num_maps as u64,
                num_reducers: stats.num_reducers as u64,
                input_bytes: stats.input_bytes,
                map_wall_nanos: stats.map_wall_nanos,
                reduce_wall_nanos: stats.reduce_wall_nanos,
            },
            counters: result.counters,
            phases,
            hists,
        }
    }

    /// Total thread-CPU nanoseconds across all phase spans.
    pub fn phase_cpu_total_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.cpu_ns).sum()
    }

    /// The encoded histogram for a metric, if the run recorded one.
    pub fn hist(&self, metric: Metric) -> Option<&LedgerHist> {
        self.hists.iter().find(|h| h.metric == metric)
    }

    /// Canonical single-line JSON encoding (no trailing newline). Fixed
    /// key order, no whitespace, every integer clamped to
    /// [`LEDGER_MAX_EXACT`] — parse + re-encode is byte-identical.
    pub fn to_json_line(&self) -> String {
        let mut o = String::with_capacity(4096);
        let _ = write!(
            o,
            "{{\"schema\":\"{LEDGER_SCHEMA}\",\"label\":\"{}\",\"clock\":\"{}\",\"host_cpus\":{}",
            esc(&self.label),
            esc(&self.clock),
            clamp(self.host_cpus)
        );

        let c = &self.config;
        let _ = write!(
            o,
            ",\"config\":{{\"codec\":\"{}\",\"block_kib\":{},\"num_reducers\":{},\
             \"map_slots\":{},\"reduce_slots\":{},\"spill_buffer_bytes\":{},\
             \"framing\":\"{}\",\"ifile_version\":{},\"combiner\":{},\"task_retries\":{}",
            esc(&c.codec),
            clamp(c.block_kib),
            clamp(c.num_reducers),
            clamp(c.map_slots),
            clamp(c.reduce_slots),
            clamp(c.spill_buffer_bytes),
            esc(&c.framing),
            clamp(c.ifile_version),
            c.combiner,
            clamp(c.task_retries)
        );
        match c.fault_seed {
            Some(seed) => {
                let _ = write!(o, ",\"fault_seed\":{}}}", clamp(seed));
            }
            None => o.push_str(",\"fault_seed\":null}"),
        }

        let j = &self.job;
        let _ = write!(
            o,
            ",\"job\":{{\"num_maps\":{},\"num_reducers\":{},\"input_bytes\":{},\
             \"map_wall_nanos\":{},\"reduce_wall_nanos\":{}}}",
            clamp(j.num_maps),
            clamp(j.num_reducers),
            clamp(j.input_bytes),
            clamp(j.map_wall_nanos),
            clamp(j.reduce_wall_nanos)
        );

        o.push_str(",\"counters\":{");
        for (i, counter) in ALL_COUNTERS.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "\"{}\":{}",
                counter.name(),
                clamp(self.counters.get(*counter))
            );
        }
        o.push('}');

        o.push_str(",\"phases\":{");
        for (i, (phase, roll)) in ALL_PHASES.iter().zip(&self.phases).enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "\"{}\":{{\"count\":{},\"wall_ns\":{},\"cpu_ns\":{}}}",
                phase.name(),
                clamp(roll.count),
                clamp(roll.wall_ns),
                clamp(roll.cpu_ns)
            );
        }
        o.push('}');

        o.push_str(",\"histograms\":{");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.metric.name(),
                clamp(h.count),
                clamp(h.sum),
                clamp(h.min),
                clamp(h.max)
            );
            for (k, (idx, n)) in h.buckets.iter().enumerate() {
                if k > 0 {
                    o.push(',');
                }
                let _ = write!(o, "[{},{}]", idx, clamp(*n));
            }
            o.push_str("]}");
        }
        o.push_str("}}");
        o
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    path: Option<PathBuf>,
    /// Opened lazily on the first append and kept for the sink's
    /// lifetime: reopening per record costs a syscall and, worse, loses
    /// the one-`write`-per-line guarantee concurrent appenders rely on.
    file: Option<std::fs::File>,
    records: Vec<LedgerRecord>,
}

/// Shared append-only destination for ledger records. Cloning shares
/// the sink; with a path configured every append also writes one JSON
/// line to the file (created on first append).
#[derive(Clone, Default)]
pub struct LedgerSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl LedgerSink {
    /// An in-memory sink (records are only kept in the process).
    pub fn new() -> LedgerSink {
        LedgerSink::default()
    }

    /// A sink that appends each record as a JSON line to `path`.
    pub fn with_path(path: impl Into<PathBuf>) -> LedgerSink {
        LedgerSink {
            inner: Arc::new(Mutex::new(SinkInner {
                path: Some(path.into()),
                file: None,
                records: Vec::new(),
            })),
        }
    }

    /// Append a record, writing it through to the file if one is set.
    ///
    /// The file is opened once (`O_APPEND`) and each record — line body
    /// plus trailing newline — goes down in a single `write_all` of one
    /// buffer. With `O_APPEND` the kernel makes each `write` atomic with
    /// respect to the offset, so concurrent appenders (now real: every
    /// worker process of a distributed run may share the ledger path)
    /// interleave whole lines, never partial ones.
    pub fn append(&self, record: LedgerRecord) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.file.is_none() {
            if let Some(path) = &inner.path {
                inner.file = Some(
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)?,
                );
            }
        }
        if let Some(file) = &mut inner.file {
            let mut line = record.to_json_line();
            line.push('\n');
            file.write_all(line.as_bytes())?;
        }
        inner.records.push(record);
        Ok(())
    }

    /// All records appended so far (copies).
    pub fn records(&self) -> Vec<LedgerRecord> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .clone()
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .len()
    }

    /// Whether no record has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for LedgerSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("LedgerSink")
            .field("path", &inner.path)
            .field("records", &inner.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{Counter, Counters};

    fn sample_record() -> LedgerRecord {
        let counters = Counters::new();
        counters.add(Counter::MapOutputBytes, 1234);
        counters.add(Counter::ShuffleBytes, u64::MAX);
        let mut h = Histogram::new();
        h.record(0);
        h.record(7);
        h.record(1 << 40);
        LedgerRecord {
            label: "unit \"test\"".into(),
            clock: clock_name().into(),
            host_cpus: host_cpus(),
            config: LedgerConfig {
                codec: "identity".into(),
                block_kib: 0,
                num_reducers: 3,
                map_slots: 2,
                reduce_slots: 2,
                spill_buffer_bytes: 1024,
                framing: "sequence_file".into(),
                ifile_version: 2,
                combiner: true,
                task_retries: 1,
                fault_seed: Some(42),
            },
            job: LedgerJob {
                num_maps: 4,
                num_reducers: 3,
                input_bytes: 1 << 20,
                map_wall_nanos: 5_000,
                reduce_wall_nanos: 6_000,
            },
            counters: counters.snapshot(),
            phases: [PhaseRollup::default(); NUM_PHASES],
            hists: vec![LedgerHist::from_histogram(Metric::SegRawBytes, &h).expect("non-empty")],
        }
    }

    #[test]
    fn encoding_is_single_line_with_schema() {
        let line = sample_record().to_json_line();
        assert!(!line.contains('\n'), "ledger records are JSON lines");
        assert!(line.starts_with(&format!("{{\"schema\":\"{LEDGER_SCHEMA}\"")));
        assert!(line.contains("\"label\":\"unit \\\"test\\\"\""));
        assert!(line.contains("\"fault_seed\":42"));
        assert!(line.contains("\"segment_raw_bytes\""));
    }

    #[test]
    fn oversized_integers_clamp_to_exact_f64_range() {
        let line = sample_record().to_json_line();
        assert!(
            line.contains(&format!("\"shuffle_bytes\":{LEDGER_MAX_EXACT}")),
            "u64::MAX must clamp to 2^53: {line}"
        );
        assert!((LEDGER_MAX_EXACT as f64) as u64 == LEDGER_MAX_EXACT);
    }

    #[test]
    fn empty_histograms_are_omitted() {
        let h = Histogram::new();
        assert!(LedgerHist::from_histogram(Metric::SegRawBytes, &h).is_none());
    }

    #[test]
    fn sink_collects_and_writes_lines() {
        let dir = std::env::temp_dir().join(format!("scihadoop-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = LedgerSink::with_path(&path);
        assert!(sink.is_empty());
        sink.append(sample_record()).expect("append");
        sink.append(sample_record()).expect("append");
        assert_eq!(sink.len(), 2);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 2);
        assert_eq!(text.lines().next().unwrap(), sample_record().to_json_line());
        let _ = std::fs::remove_file(&path);
    }
}

//! Model-vs-measured drift reports.
//!
//! A [`DriftReport`] compares what the analytic cost model *predicted*
//! for a run against what the run actually *measured* (wall clocks,
//! span CPU, byte counters), row by row, with a signed error. The rows
//! are produced by `CostModel::reconcile` in `scihadoop-cluster` from a
//! [`LedgerRecord`](crate::obs::LedgerRecord); this module only defines
//! the report shape so the engine crate stays model-free.
//!
//! Sign convention: positive error means the model over-predicted
//! (`predicted > measured`), negative means it under-predicted.

/// One predicted-vs-measured comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRow {
    /// What is being compared (e.g. `"map_makespan"`, `"shuffle_bytes"`).
    pub name: &'static str,
    /// Unit of both columns: `"s"` for seconds, `"B"` for bytes.
    pub unit: &'static str,
    /// The model's prediction.
    pub predicted: f64,
    /// The run's measurement.
    pub measured: f64,
}

impl DriftRow {
    /// Signed error percentage relative to the measurement. Zero when
    /// both sides are zero; infinite when only the prediction is
    /// non-zero (a measurement the run did not take).
    pub fn error_pct(&self) -> f64 {
        if self.measured == 0.0 {
            if self.predicted == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.predicted - self.measured) / self.measured * 100.0
        }
    }
}

/// A full drift report for one ledger record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftReport {
    /// Label of the run the report reconciles.
    pub label: String,
    /// Comparison rows, byte identities first, then time rows.
    pub rows: Vec<DriftRow>,
}

impl DriftReport {
    /// Look up a row by name.
    pub fn row(&self, name: &str) -> Option<&DriftRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Largest absolute error (percent) among rows with the given unit.
    /// Zero when there are no such rows.
    pub fn max_abs_error_pct(&self, unit: &str) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.unit == unit)
            .map(|r| r.error_pct().abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_signed_and_relative_to_measurement() {
        let over = DriftRow {
            name: "t",
            unit: "s",
            predicted: 2.0,
            measured: 1.0,
        };
        assert!((over.error_pct() - 100.0).abs() < 1e-9);
        let under = DriftRow {
            name: "t",
            unit: "s",
            predicted: 0.5,
            measured: 1.0,
        };
        assert!((under.error_pct() + 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_measurement_edge_cases() {
        let both_zero = DriftRow {
            name: "t",
            unit: "B",
            predicted: 0.0,
            measured: 0.0,
        };
        assert_eq!(both_zero.error_pct(), 0.0);
        let missing = DriftRow {
            name: "t",
            unit: "B",
            predicted: 1.0,
            measured: 0.0,
        };
        assert!(missing.error_pct().is_infinite());
    }

    #[test]
    fn report_lookup_and_max_error() {
        let report = DriftReport {
            label: "r".into(),
            rows: vec![
                DriftRow {
                    name: "a",
                    unit: "s",
                    predicted: 1.0,
                    measured: 2.0,
                },
                DriftRow {
                    name: "b",
                    unit: "B",
                    predicted: 10.0,
                    measured: 10.0,
                },
            ],
        };
        assert!(report.row("a").is_some());
        assert!(report.row("missing").is_none());
        assert!((report.max_abs_error_pct("s") - 50.0).abs() < 1e-9);
        assert_eq!(report.max_abs_error_pct("B"), 0.0);
        assert_eq!(report.max_abs_error_pct("ns"), 0.0);
    }
}

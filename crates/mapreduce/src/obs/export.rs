//! Trace and metrics exporters.
//!
//! Two formats, both dependency-free:
//!
//! * [`chrome_trace_json`] — the Chrome `trace_event` format (an object
//!   with a `traceEvents` array of complete `"ph": "X"` events), loadable
//!   in `chrome://tracing` and Perfetto. One track per recorded thread,
//!   timestamps in microseconds since the recorder epoch, thread-CPU
//!   nanoseconds attached per span in `args`.
//! * [`metrics_json`] — a compact self-describing report: schema tag,
//!   clock kind, every counter by name, every non-empty histogram with
//!   its log2 buckets, the derived intermediate-data breakdown
//!   (see [`IntermediateBreakdown`]), and any warnings.
//!
//! [`IntermediateBreakdown`]: crate::obs::IntermediateBreakdown

use crate::counters::{CounterSnapshot, ALL_COUNTERS};
use crate::obs::hist::ALL_METRICS;
use crate::obs::report::IntermediateBreakdown;
use crate::obs::trace::Trace;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a trace as Chrome `trace_event` JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.events.len() * 128);
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    {
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&s);
        };
        push(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
         \"args\": {\"name\": \"scihadoop-job\"}}"
                .to_string(),
            &mut first,
        );
        for (tid, name) in trace.threads.iter().enumerate() {
            push(
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                    esc(name)
                ),
                &mut first,
            );
        }
        for (i, warning) in trace.warnings.iter().enumerate() {
            push(
                format!(
                    "{{\"name\": \"warning\", \"cat\": \"obs\", \"ph\": \"i\", \"s\": \"g\", \
                 \"pid\": 1, \"tid\": 0, \"ts\": {i}, \"args\": {{\"message\": \"{}\"}}}}",
                    esc(warning)
                ),
                &mut first,
            );
        }
        // IFile v3 block activity as counter tracks, so skip behaviour
        // shows up in trace viewers next to the span timeline. Values
        // come from the drained histograms and therefore match the
        // blocks_written / blocks_skipped / map_output_key_saved_bytes
        // job counters. A zero sample first keeps the track visible (and
        // renders as a step) even on runs that wrote no v3 blocks.
        let end_ts = trace
            .events
            .iter()
            .map(|(_, e)| e.wall_start_ns + e.wall_dur_ns)
            .max()
            .unwrap_or(0) as f64
            / 1e3;
        let counter_tracks = [
            (
                "v3_blocks",
                vec![
                    (
                        "blocks_written",
                        trace.hists.get(crate::obs::Metric::SegBlocks).sum(),
                    ),
                    (
                        "blocks_skipped",
                        trace
                            .hists
                            .get(crate::obs::Metric::MergeBlocksSkipped)
                            .sum(),
                    ),
                ],
            ),
            (
                "v3_key_saved",
                vec![(
                    "map_output_key_saved_bytes",
                    trace.hists.get(crate::obs::Metric::SegKeySavedBytes).sum(),
                )],
            ),
        ];
        for (name, series) in counter_tracks {
            for (ts, scale) in [(0.0, 0u64), (end_ts, 1u64)] {
                let args = series
                    .iter()
                    .map(|(key, value)| format!("\"{key}\": {}", value * scale))
                    .collect::<Vec<_>>()
                    .join(", ");
                push(
                    format!(
                        "{{\"name\": \"{name}\", \"cat\": \"obs\", \"ph\": \"C\", \"pid\": 1, \
                         \"ts\": {ts:.3}, \"args\": {{{args}}}}}"
                    ),
                    &mut first,
                );
            }
        }
        for (tid, e) in &trace.events {
            push(
                format!(
                    "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {tid}, \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"args\": {{\"task\": {}, \"cpu_ns\": {}}}}}",
                    e.phase.name(),
                    e.phase.category(),
                    e.wall_start_ns as f64 / 1e3,
                    e.wall_dur_ns as f64 / 1e3,
                    e.task,
                    e.cpu_ns
                ),
                &mut first,
            );
        }
    }
    out.push_str("\n]\n}\n");
    out
}

/// Schema tag written into every metrics report.
pub const METRICS_SCHEMA: &str = "scihadoop.metrics.v1";

/// Render a metrics report: counters, histograms, and the derived
/// intermediate-data breakdown (which reconciles exactly with the
/// counters — see [`IntermediateBreakdown::reconcile`]).
pub fn metrics_json(trace: &Trace, counters: &CounterSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("\"schema\": \"{METRICS_SCHEMA}\",\n"));
    out.push_str(&format!(
        "\"clock\": \"{}\",\n",
        match crate::clock::clock_kind() {
            crate::clock::ClockKind::ThreadCpu => "thread_cpu",
            crate::clock::ClockKind::Wall => "wall",
        }
    ));
    out.push_str(&format!("\"dropped_events\": {},\n", trace.dropped_events));

    out.push_str("\"warnings\": [");
    for (i, w) in trace.warnings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", esc(w)));
    }
    out.push_str("],\n");

    out.push_str("\"spans\": {");
    let mut first = true;
    for phase in crate::obs::ALL_PHASES {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "\"{}\": {{\"count\": {}, \"wall_ns\": {}, \"cpu_ns\": {}}}",
            phase.name(),
            trace.span_count(phase),
            trace.phase_wall_nanos(phase),
            trace.phase_cpu_nanos(phase)
        ));
    }
    out.push_str("},\n");

    out.push_str("\"counters\": {\n");
    for (i, c) in ALL_COUNTERS.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {}{}\n",
            c.name(),
            counters.get(*c),
            if i + 1 < ALL_COUNTERS.len() { "," } else { "" }
        ));
    }
    out.push_str("},\n");

    out.push_str("\"histograms\": {\n");
    let mut first = true;
    for metric in ALL_METRICS {
        let h = trace.hists.get(metric);
        if h.is_empty() {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"mean\": {:.3}, \"buckets\": [",
            metric.name(),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.mean()
        ));
        for (i, (lo, hi, n)) in h.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{lo}, {hi}, {n}]"));
        }
        out.push_str("]}");
    }
    out.push_str("\n},\n");

    let breakdown = IntermediateBreakdown::from_trace(trace);
    out.push_str("\"derived\": {\n");
    out.push_str(&format!(
        "  \"intermediate_breakdown\": {}\n",
        breakdown.to_json()
    ));
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;
    use crate::obs::{Phase, Recorder};

    #[cfg(feature = "obs")]
    fn sample_trace() -> Trace {
        let rec = Recorder::new();
        {
            let _a = rec.attach("tester \"quoted\"");
            drop(crate::span!(Phase::MapEmit, 1));
            drop(crate::span!(Phase::Merge, 2));
            crate::obs::hist(crate::obs::Metric::MergeFanIn, 3);
        }
        rec.finish()
    }

    #[test]
    #[cfg(feature = "obs")]
    fn chrome_trace_has_events_and_metadata() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"map_emit\""));
        assert!(json.contains("\"name\": \"merge\""));
        assert!(json.contains("thread_name"));
        assert!(json.contains("tester \\\"quoted\\\""), "names are escaped");
        assert!(json.contains("\"ph\": \"C\""), "counter tracks present");
        assert!(json.contains("\"v3_blocks\""));
        assert!(json.contains("\"blocks_skipped\""));
        assert!(json.contains("\"map_output_key_saved_bytes\""));
    }

    #[test]
    #[cfg(feature = "obs")]
    fn metrics_json_is_self_describing() {
        let counters = Counters::new();
        counters.add(crate::Counter::MapOutputBytes, 123);
        let json = metrics_json(&sample_trace(), &counters.snapshot());
        assert!(json.contains(&format!("\"schema\": \"{METRICS_SCHEMA}\"")));
        assert!(json.contains("\"map_output_bytes\": 123"));
        assert!(json.contains("\"merge_fan_in\""));
        assert!(json.contains("\"intermediate_breakdown\""));
        assert!(json.contains("\"spans\""));
    }

    #[test]
    fn empty_trace_still_exports() {
        let trace = Trace::empty();
        let counters = Counters::new().snapshot();
        assert!(chrome_trace_json(&trace).contains("traceEvents"));
        assert!(metrics_json(&trace, &counters).contains("histograms"));
    }

    #[test]
    fn escape_covers_control_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}

//! Log2-bucketed histogram metrics for the shuffle pipeline.
//!
//! Every metric is a fixed-size histogram: 65 buckets where bucket 0
//! holds the value 0 and bucket `k` (1 ≤ k ≤ 64) holds values in
//! `[2^(k-1), 2^k - 1]`. Recording is a `leading_zeros` plus three array
//! increments — no allocation, no branching on bucket count — so the hot
//! path can feed histograms per record. Histograms merge bucket-wise,
//! which is how per-thread banks collapse into the per-job [`Trace`].
//!
//! [`Trace`]: crate::obs::Trace

/// Number of histogram buckets (value 0 plus one per power of two).
pub const NUM_BUCKETS: usize = 65;

/// A fixed-size log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lo(index: usize) -> u64 {
    match index {
        0 => 0,
        k => 1u64 << (k - 1),
    }
}

/// Inclusive upper bound of a bucket.
pub fn bucket_hi(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 for an empty histogram.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupied buckets as `(lo, hi, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lo(i), bucket_hi(i), n))
    }

    /// Raw bucket counts (index 0 = value 0, index k = `[2^(k-1), 2^k)`).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }
}

/// Every histogram metric the pipeline records.
///
/// Per-record metrics sample at the map emit hook; per-segment metrics
/// sample once per *final* materialized segment (exactly where the byte
/// counters are charged, so histogram sums reconcile with
/// [`Counter`](crate::Counter) values); codec metrics sample per
/// compress/decompress call; the remaining metrics sample per spill,
/// merge, fetch, group or sort-split window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Key+value payload bytes per emitted map-output record.
    MapEmitRecordBytes,
    /// Key bytes per emitted map-output record.
    MapEmitKeyBytes,
    /// Value bytes per emitted map-output record.
    MapEmitValueBytes,
    /// Staged payload bytes per spill.
    SpillPayloadBytes,
    /// Records entering the combiner, per spilled partition.
    CombineInput,
    /// Records leaving the combiner, per spilled partition.
    CombineOutput,
    /// Combiner output/input ratio per spilled partition, in permille
    /// (1000 = no reduction).
    CombineReductionPermille,
    /// Key bytes per final materialized segment.
    SegKeyBytes,
    /// Value bytes per final materialized segment.
    SegValueBytes,
    /// Per-record framing bytes per final materialized segment.
    SegFramingBytes,
    /// Raw (pre-codec, framed, incl. header) bytes per final segment.
    SegRawBytes,
    /// Materialized (post-codec) bytes per final segment.
    SegMaterializedBytes,
    /// Codec input bytes per compress call.
    CompressInBytes,
    /// Codec output bytes per compress call.
    CompressOutBytes,
    /// Compression cost in nanoseconds per KiB of input.
    CompressNsPerKib,
    /// Decompression cost in nanoseconds per KiB of output.
    DecompressNsPerKib,
    /// Number of runs entering each streaming k-way merge.
    MergeFanIn,
    /// Bytes per segment fetched by a reducer in the shuffle.
    ShuffleSegmentBytes,
    /// Values per reduce group.
    ReduceGroupValues,
    /// Records per sort-split window handed to `sort_split`.
    SortSplitWindowRecords,
    /// Backoff wait per task retry, in nanoseconds.
    RetryBackoffNanos,
    /// Records landing in sort-prefix tie runs (comparator fallback
    /// volume) per radix-sorted spill partition.
    SortPrefixTies,
    /// Full-comparator invocations per radix-sorted spill partition
    /// (zero when every record is decided by its prefix alone).
    SortCompareCalls,
    /// Full-comparator invocations per streaming k-way merge (prefix
    /// ties at the loser tree).
    MergeCompareCalls,
    /// Key bytes removed by v3 front coding per final segment.
    SegKeySavedBytes,
    /// Front-coded blocks per final v3 segment.
    SegBlocks,
    /// Blocks emitted wholesale (fence-prefix skip hits) per block
    /// merge — via still-encoded splice or burst emission.
    MergeBlocksSkipped,
}

/// Number of metric slots.
pub const NUM_METRICS: usize = Metric::MergeBlocksSkipped as usize + 1;

/// All metrics, in slot order.
pub const ALL_METRICS: [Metric; NUM_METRICS] = [
    Metric::MapEmitRecordBytes,
    Metric::MapEmitKeyBytes,
    Metric::MapEmitValueBytes,
    Metric::SpillPayloadBytes,
    Metric::CombineInput,
    Metric::CombineOutput,
    Metric::CombineReductionPermille,
    Metric::SegKeyBytes,
    Metric::SegValueBytes,
    Metric::SegFramingBytes,
    Metric::SegRawBytes,
    Metric::SegMaterializedBytes,
    Metric::CompressInBytes,
    Metric::CompressOutBytes,
    Metric::CompressNsPerKib,
    Metric::DecompressNsPerKib,
    Metric::MergeFanIn,
    Metric::ShuffleSegmentBytes,
    Metric::ReduceGroupValues,
    Metric::SortSplitWindowRecords,
    Metric::RetryBackoffNanos,
    Metric::SortPrefixTies,
    Metric::SortCompareCalls,
    Metric::MergeCompareCalls,
    Metric::SegKeySavedBytes,
    Metric::SegBlocks,
    Metric::MergeBlocksSkipped,
];

impl Metric {
    /// Snake-case metric name used by the JSON exporters.
    pub fn name(self) -> &'static str {
        match self {
            Metric::MapEmitRecordBytes => "map_emit_record_bytes",
            Metric::MapEmitKeyBytes => "map_emit_key_bytes",
            Metric::MapEmitValueBytes => "map_emit_value_bytes",
            Metric::SpillPayloadBytes => "spill_payload_bytes",
            Metric::CombineInput => "combine_input_records",
            Metric::CombineOutput => "combine_output_records",
            Metric::CombineReductionPermille => "combine_reduction_permille",
            Metric::SegKeyBytes => "segment_key_bytes",
            Metric::SegValueBytes => "segment_value_bytes",
            Metric::SegFramingBytes => "segment_framing_bytes",
            Metric::SegRawBytes => "segment_raw_bytes",
            Metric::SegMaterializedBytes => "segment_materialized_bytes",
            Metric::CompressInBytes => "compress_in_bytes",
            Metric::CompressOutBytes => "compress_out_bytes",
            Metric::CompressNsPerKib => "compress_ns_per_kib",
            Metric::DecompressNsPerKib => "decompress_ns_per_kib",
            Metric::MergeFanIn => "merge_fan_in",
            Metric::ShuffleSegmentBytes => "shuffle_segment_bytes",
            Metric::ReduceGroupValues => "reduce_group_values",
            Metric::SortSplitWindowRecords => "sort_split_window_records",
            Metric::RetryBackoffNanos => "retry_backoff_nanos",
            Metric::SortPrefixTies => "sort_prefix_ties",
            Metric::SortCompareCalls => "sort_compare_calls",
            Metric::MergeCompareCalls => "merge_compare_calls",
            Metric::SegKeySavedBytes => "segment_key_saved_bytes",
            Metric::SegBlocks => "segment_blocks",
            Metric::MergeBlocksSkipped => "merge_blocks_skipped",
        }
    }
}

/// One histogram per [`Metric`], fixed-size, allocation-free to update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsBank {
    hists: [Histogram; NUM_METRICS],
}

impl Default for MetricsBank {
    fn default() -> Self {
        MetricsBank::new()
    }
}

impl MetricsBank {
    /// An all-empty bank.
    pub fn new() -> Self {
        MetricsBank {
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Record one sample into a metric.
    #[inline]
    pub fn record(&mut self, metric: Metric, value: u64) {
        self.hists[metric as usize].record(value);
    }

    /// The histogram for a metric.
    pub fn get(&self, metric: Metric) -> &Histogram {
        &self.hists[metric as usize]
    }

    /// Merge another bank into this one.
    pub fn merge(&mut self, other: &MetricsBank) {
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 1..64usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "lo of bucket {k}");
            assert_eq!(bucket_index(hi), k, "hi of bucket {k}");
            assert_eq!(bucket_lo(k), lo);
            assert_eq!(bucket_hi(k), hi);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_hi(64), u64::MAX);
        assert_eq!(bucket_lo(64), 1u64 << 63);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [0u64, 1, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2063);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 2063.0 / 6.0).abs() < 1e-9);
        // 0 → bucket 0; 1 → 1; 7,8 → 3,4; 1023 → 10; 1024 → 11.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[11], 1);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[64], 2);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
        }
        for v in [0u64, 100, u64::MAX] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.min(), 0);
        assert_eq!(merged.max(), u64::MAX);
        let mut reference = Histogram::new();
        for v in [1u64, 100, 10_000, 0, 100, u64::MAX] {
            reference.record(v);
        }
        assert_eq!(merged, reference);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 900] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, _, n)| n).sum();
        assert_eq!(total, 4);
        for (lo, hi, _) in h.nonzero_buckets() {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn bank_records_and_merges() {
        let mut a = MetricsBank::new();
        let mut b = MetricsBank::new();
        a.record(Metric::MapEmitKeyBytes, 16);
        b.record(Metric::MapEmitKeyBytes, 32);
        b.record(Metric::MergeFanIn, 8);
        a.merge(&b);
        assert_eq!(a.get(Metric::MapEmitKeyBytes).count(), 2);
        assert_eq!(a.get(Metric::MapEmitKeyBytes).sum(), 48);
        assert_eq!(a.get(Metric::MergeFanIn).sum(), 8);
        assert!(a.get(Metric::SpillPayloadBytes).is_empty());
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = ALL_METRICS.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NUM_METRICS);
    }
}

//! Span recording: RAII guards that meter one pipeline stage.
//!
//! A [`SpanGuard`] samples wall time (against the recorder's epoch) and
//! the thread CPU clock at construction, and writes one [`TraceEvent`]
//! into the calling thread's sink when dropped. When no recorder is
//! attached to the thread — or when the crate is built without the
//! `obs` feature — `begin` is a no-op that returns an empty guard.

use crate::obs::trace;

/// The eight instrumented stages of the shuffle pipeline (Fig. 1), in
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// The user map function emitting records (map task record loop).
    MapEmit,
    /// Arena index sort + spill of one buffer-full of map output.
    SortSpill,
    /// Combiner running over one sorted spill partition.
    Combine,
    /// Serializing records through an `IFileWriter` and sealing the
    /// segment (includes codec time; see the codec histograms for the
    /// split).
    IFileWrite,
    /// A reducer fetching and decompressing its segments.
    ShuffleFetch,
    /// The streaming k-way merge driving a reduce task (map-side spill
    /// merges record under the same phase).
    Merge,
    /// One sort-split window being split, re-sorted and grouped.
    SortSplit,
    /// Grouping merged records and running the user reduce function.
    ReduceGroup,
    /// A failed task attempt being backed off and re-queued (the span
    /// covers the backoff wait; one span per retry).
    Retry,
}

/// Number of phases.
pub const NUM_PHASES: usize = 9;

/// All phases, in pipeline order.
pub const ALL_PHASES: [Phase; NUM_PHASES] = [
    Phase::MapEmit,
    Phase::SortSpill,
    Phase::Combine,
    Phase::IFileWrite,
    Phase::ShuffleFetch,
    Phase::Merge,
    Phase::SortSplit,
    Phase::ReduceGroup,
    Phase::Retry,
];

impl Phase {
    /// Snake-case stage name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Phase::MapEmit => "map_emit",
            Phase::SortSpill => "sort_spill",
            Phase::Combine => "combine",
            Phase::IFileWrite => "ifile_write",
            Phase::ShuffleFetch => "shuffle_fetch",
            Phase::Merge => "merge",
            Phase::SortSplit => "sort_split",
            Phase::ReduceGroup => "reduce_group",
            Phase::Retry => "retry",
        }
    }

    /// Chrome-trace category for the stage.
    pub fn category(self) -> &'static str {
        match self {
            Phase::MapEmit | Phase::SortSpill | Phase::Combine | Phase::IFileWrite => "map",
            Phase::Retry => "retry",
            _ => "reduce",
        }
    }
}

/// One finished span: a stage execution on one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which stage ran.
    pub phase: Phase,
    /// Task id (map task index or reducer partition).
    pub task: u32,
    /// Wall-clock start, nanoseconds since the recorder's epoch.
    pub wall_start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_dur_ns: u64,
    /// Thread-CPU nanoseconds consumed inside the span.
    pub cpu_ns: u64,
}

/// RAII span: records a [`TraceEvent`] on drop. Obtain one through
/// [`SpanGuard::begin`] or the [`span!`](crate::span) macro.
#[must_use = "a span guard meters the scope it lives in"]
pub struct SpanGuard {
    inner: Option<Open>,
}

struct Open {
    phase: Phase,
    task: u32,
    wall_start_ns: u64,
    cpu_start: u64,
}

impl SpanGuard {
    /// Start a span for `phase` if a recorder is attached to this
    /// thread; otherwise return an inert guard.
    #[inline]
    pub fn begin(phase: Phase, task: u32) -> SpanGuard {
        #[cfg(feature = "obs")]
        {
            let Some(wall_start_ns) = trace::current_epoch_nanos() else {
                return SpanGuard { inner: None };
            };
            SpanGuard {
                inner: Some(Open {
                    phase,
                    task,
                    wall_start_ns,
                    cpu_start: crate::clock::thread_cpu_nanos(),
                }),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (phase, task);
            SpanGuard { inner: None }
        }
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            let cpu_ns = crate::clock::since(open.cpu_start);
            let wall_end = trace::current_epoch_nanos().unwrap_or(open.wall_start_ns);
            trace::push_event(TraceEvent {
                phase: open.phase,
                task: open.task,
                wall_start_ns: open.wall_start_ns,
                wall_dur_ns: wall_end.saturating_sub(open.wall_start_ns),
                cpu_ns,
            });
        }
    }
}

/// Open a [`SpanGuard`] for a pipeline stage: `span!(Phase::SortSpill,
/// task_id)`. Bind the result (`let _span = span!(...)`) so the guard
/// covers the intended scope.
#[macro_export]
macro_rules! span {
    ($phase:expr, $task:expr) => {
        $crate::obs::SpanGuard::begin($phase, $task as u32)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique() {
        let mut names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NUM_PHASES);
    }

    #[test]
    fn unattached_span_is_inert() {
        let g = SpanGuard::begin(Phase::MapEmit, 3);
        assert!(!g.is_recording(), "no recorder attached on this thread");
        drop(g);
    }
}

//! Per-job recording: thread sinks, the ambient attachment, and the
//! drained [`Trace`].
//!
//! A [`Recorder`] is created per job and handed to every worker thread.
//! Each thread *attaches* once (a thread-local pointer plus one
//! registry insertion) and then records spans and histogram samples
//! into its own sink: a bounded event ring and a [`MetricsBank`],
//! guarded by a `parking_lot` mutex that only the owning thread ever
//! touches while the job runs — lock-light by construction, locked by a
//! second party only during the final drain, after the worker scopes
//! have ended. Recording with no attachment is a single thread-local
//! read.
//!
//! The sink's event buffer is a bounded ring in the "drop newest"
//! style: past [`EVENT_CAPACITY`] events the sink counts drops instead
//! of growing, so a pathological workload cannot turn tracing into an
//! allocator benchmark. Dropped counts surface in the exported metrics.

use crate::obs::hist::{Metric, MetricsBank};
use crate::obs::span::TraceEvent;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Maximum buffered events per thread sink; overflow increments a drop
/// counter instead of allocating.
pub const EVENT_CAPACITY: usize = 1 << 16;

#[cfg_attr(not(feature = "obs"), allow(dead_code))]
struct ThreadSink {
    name: String,
    events: Vec<TraceEvent>,
    dropped: u64,
    hists: MetricsBank,
}

#[cfg_attr(not(feature = "obs"), allow(dead_code))]
impl ThreadSink {
    fn new(name: String) -> Self {
        ThreadSink {
            name,
            events: Vec::new(),
            dropped: 0,
            hists: MetricsBank::new(),
        }
    }
}

struct Shared {
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    epoch: Instant,
    sinks: Mutex<Vec<Arc<Mutex<ThreadSink>>>>,
    warnings: Mutex<Vec<String>>,
}

/// Per-job trace/metrics collector. Cheap to clone (an `Arc`).
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("threads", &self.shared.sinks.lock().len())
            .finish()
    }
}

#[cfg_attr(not(feature = "obs"), allow(dead_code))]
struct LocalCtx {
    epoch: Instant,
    sink: Arc<Mutex<ThreadSink>>,
}

thread_local! {
    static CURRENT: RefCell<Option<LocalCtx>> = const { RefCell::new(None) };
}

impl Recorder {
    /// A fresh recorder. If the thread-CPU clock is unavailable on this
    /// platform, a one-time warning is recorded into the trace (phase
    /// CPU attribution falls back to wall time — see
    /// [`crate::clock`]).
    pub fn new() -> Self {
        let shared = Arc::new(Shared {
            epoch: Instant::now(),
            sinks: Mutex::new(Vec::new()),
            warnings: Mutex::new(Vec::new()),
        });
        if crate::clock::clock_kind() == crate::clock::ClockKind::Wall {
            shared.warnings.lock().push(
                "thread-CPU clock unavailable on this platform: span cpu_ns and phase \
                 counters fall back to wall-clock attribution and will be skewed under \
                 oversubscription"
                    .to_string(),
            );
        }
        Recorder { shared }
    }

    /// Attach this thread to the recorder. Spans and histogram samples
    /// recorded by the thread flow into the returned sink until the
    /// [`Attachment`] drops. `name` labels the thread in trace exports.
    pub fn attach(&self, name: &str) -> Attachment {
        #[cfg(feature = "obs")]
        {
            let sink = Arc::new(Mutex::new(ThreadSink::new(name.to_string())));
            self.shared.sinks.lock().push(sink.clone());
            let prev = CURRENT.with(|c| {
                c.borrow_mut().replace(LocalCtx {
                    epoch: self.shared.epoch,
                    sink,
                })
            });
            Attachment { prev: Some(prev) }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = name;
            Attachment { prev: None }
        }
    }

    /// Record a job-level warning string into the trace.
    pub fn warn(&self, message: impl Into<String>) {
        self.shared.warnings.lock().push(message.into());
    }

    /// Drain every thread sink into one [`Trace`]. Call after all
    /// attached worker threads have finished (their attachments
    /// dropped); sinks registered by still-attached threads are drained
    /// as-is.
    pub fn finish(&self) -> Trace {
        let mut trace = Trace::empty();
        let sinks = self.shared.sinks.lock();
        for (tid, sink) in sinks.iter().enumerate() {
            let mut sink = sink.lock();
            trace.threads.push(sink.name.clone());
            trace
                .events
                .extend(sink.events.drain(..).map(|e| (tid as u32, e)));
            trace.dropped_events += sink.dropped;
            trace.hists.merge(&sink.hists);
        }
        trace.warnings.extend(self.shared.warnings.lock().clone());
        trace.events.sort_by_key(|(tid, e)| (e.wall_start_ns, *tid));
        trace
    }
}

/// RAII attachment of the current thread to a [`Recorder`]; restores
/// the previous attachment (usually none) on drop.
pub struct Attachment {
    /// `Some(prev)` when an attachment was installed; `None` under the
    /// no-op build.
    prev: Option<Option<LocalCtx>>,
}

impl Drop for Attachment {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Nanoseconds since the attached recorder's epoch, or `None` when the
/// thread is not attached. The fast path for every recording hook.
#[inline]
pub(crate) fn current_epoch_nanos() -> Option<u64> {
    #[cfg(feature = "obs")]
    {
        CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .map(|ctx| ctx.epoch.elapsed().as_nanos() as u64)
        })
    }
    #[cfg(not(feature = "obs"))]
    {
        None
    }
}

/// Push a finished span into the attached sink (no-op when detached).
#[inline]
pub(crate) fn push_event(event: TraceEvent) {
    #[cfg(feature = "obs")]
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            let mut sink = ctx.sink.lock();
            if sink.events.len() < EVENT_CAPACITY {
                sink.events.push(event);
            } else {
                sink.dropped += 1;
            }
        }
    });
    #[cfg(not(feature = "obs"))]
    let _ = event;
}

/// Record one histogram sample into the attached sink (no-op when
/// detached).
#[inline]
pub fn hist(metric: Metric, value: u64) {
    #[cfg(feature = "obs")]
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.sink.lock().hists.record(metric, value);
        }
    });
    #[cfg(not(feature = "obs"))]
    let _ = (metric, value);
}

/// Record several histogram samples with one attachment lookup.
#[inline]
pub fn hist_many(samples: &[(Metric, u64)]) {
    #[cfg(feature = "obs")]
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            let mut sink = ctx.sink.lock();
            for &(metric, value) in samples {
                sink.hists.record(metric, value);
            }
        }
    });
    #[cfg(not(feature = "obs"))]
    let _ = samples;
}

/// True when the calling thread is attached to a recorder.
#[inline]
pub fn recording() -> bool {
    #[cfg(feature = "obs")]
    {
        CURRENT.with(|c| c.borrow().is_some())
    }
    #[cfg(not(feature = "obs"))]
    {
        false
    }
}

/// A drained per-job trace: every span from every thread, the merged
/// histogram bank, and bookkeeping.
#[derive(Debug, Clone)]
pub struct Trace {
    /// `(tid, event)` pairs, sorted by wall start time. `tid` indexes
    /// [`Trace::threads`].
    pub events: Vec<(u32, TraceEvent)>,
    /// Thread labels, by sink registration order.
    pub threads: Vec<String>,
    /// Merged histogram metrics.
    pub hists: MetricsBank,
    /// Job-level warnings (e.g. the wall-clock fallback notice).
    pub warnings: Vec<String>,
    /// Events discarded because a thread sink hit [`EVENT_CAPACITY`].
    pub dropped_events: u64,
}

impl Trace {
    /// An empty trace.
    pub fn empty() -> Self {
        Trace {
            events: Vec::new(),
            threads: Vec::new(),
            hists: MetricsBank::new(),
            warnings: Vec::new(),
            dropped_events: 0,
        }
    }

    /// Number of spans recorded for one phase.
    pub fn span_count(&self, phase: crate::obs::Phase) -> usize {
        self.events.iter().filter(|(_, e)| e.phase == phase).count()
    }

    /// Total wall nanoseconds across one phase's spans (spans may
    /// overlap across threads; this is summed, not unioned).
    pub fn phase_wall_nanos(&self, phase: crate::obs::Phase) -> u64 {
        self.events
            .iter()
            .filter(|(_, e)| e.phase == phase)
            .map(|(_, e)| e.wall_dur_ns)
            .sum()
    }

    /// Total thread-CPU nanoseconds across one phase's spans.
    pub fn phase_cpu_nanos(&self, phase: crate::obs::Phase) -> u64 {
        self.events
            .iter()
            .filter(|(_, e)| e.phase == phase)
            .map(|(_, e)| e.cpu_ns)
            .sum()
    }

    /// Merge another trace into this one (thread ids are re-based).
    pub fn merge(&mut self, other: &Trace) {
        let base = self.threads.len() as u32;
        self.threads.extend(other.threads.iter().cloned());
        self.events
            .extend(other.events.iter().map(|(tid, e)| (tid + base, *e)));
        self.events.sort_by_key(|(tid, e)| (e.wall_start_ns, *tid));
        self.hists.merge(&other.hists);
        self.warnings.extend(other.warnings.iter().cloned());
        self.dropped_events += other.dropped_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Phase;

    #[test]
    #[cfg(feature = "obs")]
    fn spans_flow_into_the_attached_recorder() {
        let rec = Recorder::new();
        {
            let _a = rec.attach("test-thread");
            assert!(recording());
            let g = crate::span!(Phase::MapEmit, 7);
            assert!(g.is_recording());
            std::hint::black_box(vec![0u8; 4096]);
            drop(g);
            hist(Metric::MergeFanIn, 4);
        }
        assert!(!recording(), "attachment must restore on drop");
        let trace = rec.finish();
        assert_eq!(trace.threads, vec!["test-thread".to_string()]);
        assert_eq!(trace.span_count(Phase::MapEmit), 1);
        let (_, e) = trace.events[0];
        assert_eq!(e.task, 7);
        assert_eq!(trace.hists.get(Metric::MergeFanIn).sum(), 4);
    }

    #[test]
    #[cfg(not(feature = "obs"))]
    fn noop_build_attach_is_inert() {
        let rec = Recorder::new();
        {
            let _a = rec.attach("noop");
            assert!(!recording(), "no-op build must never report recording");
            drop(crate::span!(Phase::MapEmit, 0));
            hist(Metric::MergeFanIn, 1);
        }
        let trace = rec.finish();
        assert!(trace.events.is_empty());
        assert!(trace.threads.is_empty(), "no sink is even registered");
        assert!(trace.hists.get(Metric::MergeFanIn).is_empty());
    }

    #[test]
    fn detached_threads_record_nothing() {
        let rec = Recorder::new();
        drop(crate::span!(Phase::Merge, 0));
        hist(Metric::MergeFanIn, 1);
        let trace = rec.finish();
        assert!(trace.events.is_empty());
        assert!(trace.hists.get(Metric::MergeFanIn).is_empty());
    }

    #[test]
    #[cfg(feature = "obs")]
    fn multiple_threads_drain_into_one_trace() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for i in 0..4u32 {
                let rec = rec.clone();
                s.spawn(move || {
                    let _a = rec.attach(&format!("worker-{i}"));
                    let _g = crate::span!(Phase::SortSpill, i);
                    hist(Metric::SpillPayloadBytes, 1000 + i as u64);
                });
            }
        });
        let trace = rec.finish();
        assert_eq!(trace.threads.len(), 4);
        assert_eq!(trace.span_count(Phase::SortSpill), 4);
        assert_eq!(trace.hists.get(Metric::SpillPayloadBytes).count(), 4);
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].1.wall_start_ns <= w[1].1.wall_start_ns));
    }

    #[test]
    #[cfg(feature = "obs")]
    fn nested_attachments_restore_the_outer_recorder() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _a = outer.attach("outer");
        {
            let _b = inner.attach("inner");
            drop(crate::span!(Phase::Combine, 0));
        }
        drop(crate::span!(Phase::MapEmit, 0));
        drop(_a);
        assert_eq!(inner.finish().span_count(Phase::Combine), 1);
        let outer_trace = outer.finish();
        assert_eq!(outer_trace.span_count(Phase::MapEmit), 1);
        assert_eq!(outer_trace.span_count(Phase::Combine), 0);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn event_ring_caps_and_counts_drops() {
        let rec = Recorder::new();
        {
            let _a = rec.attach("flood");
            for i in 0..(EVENT_CAPACITY + 10) {
                drop(crate::span!(Phase::ReduceGroup, i as u32));
            }
        }
        let trace = rec.finish();
        assert_eq!(trace.events.len(), EVENT_CAPACITY);
        assert_eq!(trace.dropped_events, 10);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn merge_rebases_thread_ids() {
        let a = Recorder::new();
        {
            let _g = a.attach("a0");
            drop(crate::span!(Phase::MapEmit, 0));
        }
        let b = Recorder::new();
        {
            let _g = b.attach("b0");
            drop(crate::span!(Phase::Merge, 1));
        }
        let mut ta = a.finish();
        let tb = b.finish();
        ta.merge(&tb);
        assert_eq!(ta.threads, vec!["a0".to_string(), "b0".to_string()]);
        assert_eq!(ta.events.len(), 2);
        let merge_tid = ta
            .events
            .iter()
            .find(|(_, e)| e.phase == Phase::Merge)
            .map(|(tid, _)| *tid)
            .unwrap();
        assert_eq!(ta.threads[merge_tid as usize], "b0");
    }
}

//! Deterministic fault injection for the shuffle pipeline.
//!
//! Production Hadoop jobs see transient task failures, segment bit-rot,
//! and stragglers; Herodotou's performance models (PAPERS.md) show
//! failure/retry behavior dominating runtime variance. This module
//! injects those faults *reproducibly*: every decision is a pure
//! function of `(seed, fault kind, task id, attempt, index)` hashed
//! through splitmix64 — no wall clock, no global RNG — so a failing run
//! replays bit-for-bit from its seed, and tests can assert exact
//! behavior.
//!
//! The [`FaultPlan`] is consulted by the runner at three points:
//! before a map task runs (injected task error), before a reduce task
//! runs, and as each fetched segment is opened (corruption of the
//! materialized bytes). `attempt_cap` bounds injection to the first N
//! attempts of a task, which guarantees a job with `retries >=
//! attempt_cap` always completes — the property the `fault_storm`
//! experiment asserts.

use crate::error::MrError;
use std::time::Duration;

/// Fixed-point scale for fault rates: decisions compare 53 hash bits
/// against `rate * 2^53`, exactly representable for any `f64` rate.
const RATE_BITS: u32 = 53;

/// splitmix64 — the finalizer used by `SplitMix64`; passes BigCrush as a
/// mixing function and is a pure, allocation-free way to turn a decision
/// coordinate into uniform bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Kinds of injectable fault; feeds the hash so the same task/attempt
/// coordinate draws independent decisions per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    MapError = 1,
    ReduceError = 2,
    Corrupt = 3,
    Slow = 4,
}

/// Rates and bounds for a fault plan. Construct via [`FaultConfig::parse`]
/// or struct update syntax over [`FaultConfig::default`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed every decision derives from; same seed → same faults.
    pub seed: u64,
    /// Probability a map task attempt fails before running.
    pub map_error_rate: f64,
    /// Probability a reduce task attempt fails before running.
    pub reduce_error_rate: f64,
    /// Probability a fetched segment is corrupted before opening.
    pub corrupt_rate: f64,
    /// Probability a task attempt is artificially delayed.
    pub slow_rate: f64,
    /// Delay applied to slow tasks.
    pub slow_millis: u64,
    /// Attempts 0..cap are eligible for injection; later attempts run
    /// clean. `retries >= attempt_cap` therefore guarantees completion.
    pub attempt_cap: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            map_error_rate: 0.0,
            reduce_error_rate: 0.0,
            corrupt_rate: 0.0,
            slow_rate: 0.0,
            slow_millis: 1,
            attempt_cap: 1,
        }
    }
}

impl FaultConfig {
    /// Parse a `--faults` spec: comma-separated `key=value` pairs with
    /// keys `seed`, `map`, `reduce`, `corrupt`, `slow`, `slow_ms`, `cap`.
    ///
    /// Example: `seed=42,map=0.15,reduce=0.1,corrupt=0.08,cap=2`.
    pub fn parse(spec: &str) -> Result<Self, MrError> {
        let mut config = FaultConfig::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| MrError::Config(format!("fault spec `{part}` is not key=value")))?;
            let bad =
                |what: &str| MrError::Config(format!("fault spec {key}: bad {what} `{value}`"));
            match key.trim() {
                "seed" => config.seed = value.parse().map_err(|_| bad("integer"))?,
                "map" => config.map_error_rate = parse_rate(value)?,
                "reduce" => config.reduce_error_rate = parse_rate(value)?,
                "corrupt" => config.corrupt_rate = parse_rate(value)?,
                "slow" => config.slow_rate = parse_rate(value)?,
                "slow_ms" => config.slow_millis = value.parse().map_err(|_| bad("integer"))?,
                "cap" => config.attempt_cap = value.parse().map_err(|_| bad("integer"))?,
                other => return Err(MrError::Config(format!("unknown fault spec key `{other}`"))),
            }
        }
        Ok(config)
    }
}

fn parse_rate(value: &str) -> Result<f64, MrError> {
    let rate: f64 = value
        .parse()
        .map_err(|_| MrError::Config(format!("fault rate `{value}` is not a number")))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(MrError::Config(format!("fault rate {rate} outside [0, 1]")));
    }
    Ok(rate)
}

/// A corruption to apply to a segment's materialized bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Flip one bit of the payload.
    BitFlip {
        /// Bit offset, taken modulo the payload's bit length.
        bit: u64,
    },
    /// Truncate the payload to a fraction of its length.
    Truncate {
        /// Per-mille of the payload to keep (0..1000).
        keep_permille: u16,
    },
}

impl Corruption {
    /// Apply the corruption in place. Empty payloads are left unchanged —
    /// there is nothing to corrupt.
    pub fn apply(&self, data: &mut Vec<u8>) {
        if data.is_empty() {
            return;
        }
        match *self {
            Corruption::BitFlip { bit } => {
                let bit = bit % (data.len() as u64 * 8);
                data[(bit / 8) as usize] ^= 1u8 << (bit % 8);
            }
            Corruption::Truncate { keep_permille } => {
                let keep = (data.len() as u64 * keep_permille.min(999) as u64 / 1000) as usize;
                data.truncate(keep);
            }
        }
    }
}

/// A sealed fault plan: pure decision functions over task coordinates.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Seal a configuration into a plan.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The configuration this plan was sealed from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Uniform bits for a decision coordinate.
    fn bits(&self, kind: Kind, task: u64, attempt: u32, index: u64) -> u64 {
        let mut h = splitmix64(self.config.seed ^ (kind as u64).wrapping_mul(0xA5A5_A5A5));
        h = splitmix64(h ^ task);
        h = splitmix64(h ^ attempt as u64);
        splitmix64(h ^ index)
    }

    /// Decide a rate-gated event; attempts at or past the cap never fire.
    fn decide(&self, kind: Kind, task: u64, attempt: u32, index: u64, rate: f64) -> bool {
        if rate <= 0.0 || attempt >= self.config.attempt_cap {
            return false;
        }
        let draw = self.bits(kind, task, attempt, index) >> (64 - RATE_BITS);
        (draw as f64) < rate * (1u64 << RATE_BITS) as f64
    }

    /// Should this map task attempt fail with an injected error?
    pub fn map_error(&self, task: u64, attempt: u32) -> bool {
        self.decide(Kind::MapError, task, attempt, 0, self.config.map_error_rate)
    }

    /// Should this reduce task attempt fail with an injected error?
    pub fn reduce_error(&self, task: u64, attempt: u32) -> bool {
        self.decide(
            Kind::ReduceError,
            task,
            attempt,
            0,
            self.config.reduce_error_rate,
        )
    }

    /// Corruption (if any) for segment `index` fetched by reduce task
    /// `task` on `attempt`.
    pub fn corruption(&self, task: u64, attempt: u32, index: u64) -> Option<Corruption> {
        if !self.decide(
            Kind::Corrupt,
            task,
            attempt,
            index,
            self.config.corrupt_rate,
        ) {
            return None;
        }
        // Independent bits (different index stream) choose the shape.
        let shape = self.bits(Kind::Corrupt, task, attempt, index ^ 0x5EED_0000_0000);
        Some(if shape & 1 == 0 {
            Corruption::BitFlip { bit: shape >> 1 }
        } else {
            Corruption::Truncate {
                keep_permille: ((shape >> 1) % 1000) as u16,
            }
        })
    }

    /// Artificial delay (if any) for this task attempt.
    pub fn slow(&self, task: u64, attempt: u32) -> Option<Duration> {
        if self.decide(Kind::Slow, task, attempt, 0, self.config.slow_rate) {
            Some(Duration::from_millis(self.config.slow_millis))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config)
    }

    #[test]
    fn decisions_are_deterministic_across_plans() {
        let config = FaultConfig {
            seed: 42,
            map_error_rate: 0.3,
            reduce_error_rate: 0.2,
            corrupt_rate: 0.25,
            slow_rate: 0.1,
            ..FaultConfig::default()
        };
        let a = plan(config.clone());
        let b = plan(config);
        for task in 0..50u64 {
            assert_eq!(a.map_error(task, 0), b.map_error(task, 0));
            assert_eq!(a.reduce_error(task, 0), b.reduce_error(task, 0));
            assert_eq!(a.corruption(task, 0, 3), b.corruption(task, 0, 3));
            assert_eq!(a.slow(task, 0), b.slow(task, 0));
        }
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let mk = |seed| {
            plan(FaultConfig {
                seed,
                map_error_rate: 0.5,
                ..FaultConfig::default()
            })
        };
        let (a, b) = (mk(1), mk(2));
        let differs = (0..200u64).any(|t| a.map_error(t, 0) != b.map_error(t, 0));
        assert!(differs, "seeds 1 and 2 produced identical fault patterns");
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let p = plan(FaultConfig {
            seed: 7,
            map_error_rate: 0.25,
            ..FaultConfig::default()
        });
        let hits = (0..10_000u64).filter(|&t| p.map_error(t, 0)).count();
        // 4σ band around 2500 for p=0.25, n=10000 (σ ≈ 43).
        assert!((2300..=2700).contains(&hits), "observed {hits}/10000");
    }

    #[test]
    fn attempt_cap_silences_later_attempts() {
        let p = plan(FaultConfig {
            seed: 9,
            map_error_rate: 1.0,
            corrupt_rate: 1.0,
            slow_rate: 1.0,
            attempt_cap: 2,
            ..FaultConfig::default()
        });
        for task in 0..20u64 {
            assert!(p.map_error(task, 0));
            assert!(p.map_error(task, 1));
            assert!(!p.map_error(task, 2), "attempt at cap must run clean");
            assert!(p.corruption(task, 2, 0).is_none());
            assert!(p.slow(task, 2).is_none());
        }
    }

    #[test]
    fn zero_rates_never_fire() {
        let p = plan(FaultConfig {
            seed: 3,
            ..FaultConfig::default()
        });
        for task in 0..100u64 {
            assert!(!p.map_error(task, 0));
            assert!(!p.reduce_error(task, 0));
            assert!(p.corruption(task, 0, task).is_none());
            assert!(p.slow(task, 0).is_none());
        }
    }

    #[test]
    fn corruption_shapes_cover_both_variants() {
        let p = plan(FaultConfig {
            seed: 11,
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        });
        let shapes: Vec<Corruption> = (0..50u64).filter_map(|i| p.corruption(0, 0, i)).collect();
        assert!(shapes
            .iter()
            .any(|c| matches!(c, Corruption::BitFlip { .. })));
        assert!(shapes
            .iter()
            .any(|c| matches!(c, Corruption::Truncate { .. })));
    }

    #[test]
    fn corruption_applies_in_place() {
        let original = vec![0xAAu8; 64];
        let mut flipped = original.clone();
        Corruption::BitFlip { bit: 13 }.apply(&mut flipped);
        assert_ne!(flipped, original);
        assert_eq!(flipped.len(), original.len());

        let mut truncated = original.clone();
        Corruption::Truncate { keep_permille: 500 }.apply(&mut truncated);
        assert_eq!(truncated.len(), 32);

        // keep_permille is clamped below 1000 — truncation always drops
        // at least one byte, so it is never a no-op.
        let mut clamped = original.clone();
        Corruption::Truncate {
            keep_permille: 1000,
        }
        .apply(&mut clamped);
        assert!(clamped.len() < original.len());

        let mut empty: Vec<u8> = Vec::new();
        Corruption::BitFlip { bit: 5 }.apply(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn parse_roundtrips_a_full_spec() {
        let config = FaultConfig::parse(
            "seed=42,map=0.15,reduce=0.1,corrupt=0.08,slow=0.05,slow_ms=2,cap=2",
        )
        .unwrap();
        assert_eq!(config.seed, 42);
        assert_eq!(config.map_error_rate, 0.15);
        assert_eq!(config.reduce_error_rate, 0.1);
        assert_eq!(config.corrupt_rate, 0.08);
        assert_eq!(config.slow_rate, 0.05);
        assert_eq!(config.slow_millis, 2);
        assert_eq!(config.attempt_cap, 2);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultConfig::parse("map").is_err());
        assert!(FaultConfig::parse("map=2.0").is_err());
        assert!(FaultConfig::parse("map=-0.1").is_err());
        assert!(FaultConfig::parse("map=abc").is_err());
        assert!(FaultConfig::parse("bogus=1").is_err());
        assert!(FaultConfig::parse("seed=notanumber").is_err());
        // Empty spec is a valid no-fault plan.
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::default());
    }
}

//! Arena-backed spill buffer for the map-side shuffle hot path.
//!
//! The engine's original staging path allocated two `Vec<u8>`s per
//! emitted record (`KvPair`) and sorted those owned pairs. This arena is
//! the analogue of Hadoop's `MapOutputBuffer` (`io.sort.mb`): every
//! emitted key/value is appended to one contiguous byte buffer shared by
//! all partitions, and each partition keeps a compact record index of
//! `(offset, key_len, val_len)` entries. Sorting a partition permutes
//! the *index* while comparing key slices in place — record payloads are
//! written once and never move. Spills drain the arena through borrowed
//! slices straight into the `IFileWriter`, then `clear()` retains the
//! allocated capacity for the next spill.

use crate::keysem::KeySemantics;
use std::cmp::Ordering;

/// One staged record: value bytes immediately follow the key bytes at
/// `off` inside the shared data buffer.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    off: usize,
    key_len: u32,
    val_len: u32,
}

impl IndexEntry {
    fn key<'a>(&self, data: &'a [u8]) -> &'a [u8] {
        &data[self.off..self.off + self.key_len as usize]
    }

    fn value<'a>(&self, data: &'a [u8]) -> &'a [u8] {
        let start = self.off + self.key_len as usize;
        &data[start..start + self.val_len as usize]
    }
}

/// Contiguous staging buffer for one map task's output, indexed per
/// partition.
pub struct SpillArena {
    data: Vec<u8>,
    parts: Vec<Vec<IndexEntry>>,
    payload_bytes: usize,
}

impl SpillArena {
    /// An empty arena staging for `partitions` reducers.
    pub fn new(partitions: usize) -> Self {
        SpillArena {
            data: Vec::new(),
            parts: (0..partitions).map(|_| Vec::new()).collect(),
            payload_bytes: 0,
        }
    }

    /// Number of partitions staged for.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Append one record to a partition.
    pub fn append(&mut self, partition: usize, key: &[u8], value: &[u8]) {
        let off = self.data.len();
        self.data.extend_from_slice(key);
        self.data.extend_from_slice(value);
        self.parts[partition].push(IndexEntry {
            off,
            key_len: u32::try_from(key.len()).expect("key larger than 4 GiB"),
            val_len: u32::try_from(value.len()).expect("value larger than 4 GiB"),
        });
        self.payload_bytes += key.len() + value.len();
    }

    /// Staged payload bytes (keys + values, no framing) — the spill-
    /// threshold metric, matching Hadoop's buffer accounting.
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Records staged for one partition.
    pub fn partition_len(&self, partition: usize) -> usize {
        self.parts[partition].len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Stable-sort one partition's index by key; record bytes stay put.
    ///
    /// This is the spill sort's comparison-free fast path: each entry is
    /// tagged with its key's [`KeySemantics::sort_prefix`] and the
    /// `(prefix, entry)` pairs go through an LSD radix sort; only prefix
    /// tie runs ever call the virtual comparator. Byte-identical to the
    /// retained [`SpillArena::sort_partition_by_compare`] reference
    /// (radix + tie-run stable sort ⇔ whole stable comparator sort).
    /// Records `sort_prefix_ties` / `sort_compare_calls` histograms per
    /// sorted partition.
    pub fn sort_partition(&mut self, partition: usize, ks: &dyn KeySemantics) {
        let mut index = std::mem::take(&mut self.parts[partition]);
        if index.len() > 1 {
            let data = &self.data;
            // Allocation-free presorted probe first: strictly ascending
            // prefixes prove the partition is already sorted (prefix <
            // implies compare Less), so emission-ordered spills skip the
            // sort — and the keyed-vec build and index rebuild —
            // entirely, comparison-free. Disordered input bails at the
            // first inversion, so the wasted rescan is bounded by where
            // order first breaks.
            let mut prev = 0u64;
            let mut presorted = true;
            for (i, &e) in index.iter().enumerate() {
                let prefix = ks.sort_prefix(e.key(data));
                if i > 0 && prev >= prefix {
                    presorted = false;
                    break;
                }
                prev = prefix;
            }
            let stats = if presorted {
                crate::sort::PrefixSortStats::default()
            } else {
                let mut keyed: Vec<(u64, IndexEntry)> = index
                    .iter()
                    .map(|&e| (ks.sort_prefix(e.key(data)), e))
                    .collect();
                let stats = crate::sort::prefix_sort_with(&mut keyed, ks, |e| e.key(data));
                index.clear();
                index.extend(keyed.iter().map(|&(_, e)| e));
                stats
            };
            crate::obs::hist_many(&[
                (crate::obs::Metric::SortPrefixTies, stats.tie_records),
                (crate::obs::Metric::SortCompareCalls, stats.compare_calls),
            ]);
        }
        self.parts[partition] = index;
        debug_assert!(is_partition_sorted(self, partition, ks));
    }

    /// Reference spill sort: stable comparator sort of the index, the
    /// pre-radix implementation. Kept for the equivalence suite and
    /// `bench_shuffle_hotpath`'s before/after rows.
    pub fn sort_partition_by_compare(&mut self, partition: usize, ks: &dyn KeySemantics) {
        let mut index = std::mem::take(&mut self.parts[partition]);
        let data = &self.data;
        index.sort_by(|a, b| ks.compare(a.key(data), b.key(data)));
        self.parts[partition] = index;
    }

    /// Iterate one partition's `(key, value)` slices in index order
    /// (sorted order after [`SpillArena::sort_partition`]).
    pub fn pairs(&self, partition: usize) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.parts[partition]
            .iter()
            .map(|e| (e.key(&self.data), e.value(&self.data)))
    }

    /// Group a sorted partition by the grouping predicate; calls `f` once
    /// per group with `(key, values)`, all borrowed from the arena.
    pub fn for_each_group(
        &self,
        partition: usize,
        ks: &dyn KeySemantics,
        mut f: impl FnMut(&[u8], &[&[u8]]),
    ) {
        let entries = &self.parts[partition];
        let mut i = 0;
        while i < entries.len() {
            let key = entries[i].key(&self.data);
            let mut j = i + 1;
            while j < entries.len() && ks.group_eq(key, entries[j].key(&self.data)) {
                j += 1;
            }
            let values: Vec<&[u8]> = entries[i..j].iter().map(|e| e.value(&self.data)).collect();
            f(key, &values);
            i = j;
        }
    }

    /// Forget all staged records but keep the allocations for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
        for p in &mut self.parts {
            p.clear();
        }
        self.payload_bytes = 0;
    }
}

/// Assert a partition's index is sorted (debug builds of callers).
pub fn is_partition_sorted(arena: &SpillArena, partition: usize, ks: &dyn KeySemantics) -> bool {
    let keys: Vec<&[u8]> = arena.pairs(partition).map(|(k, _)| k).collect();
    keys.windows(2)
        .all(|w| ks.compare(w[0], w[1]) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keysem::DefaultKeySemantics;

    fn collect(arena: &SpillArena, partition: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        arena
            .pairs(partition)
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect()
    }

    #[test]
    fn append_tracks_payload_and_partitions() {
        let mut a = SpillArena::new(3);
        assert!(a.is_empty());
        a.append(0, b"key", b"value");
        a.append(2, b"k2", b"");
        assert_eq!(a.payload_bytes(), 10);
        assert_eq!(a.partition_len(0), 1);
        assert_eq!(a.partition_len(1), 0);
        assert_eq!(a.partition_len(2), 1);
        assert!(!a.is_empty());
        assert_eq!(collect(&a, 0), vec![(b"key".to_vec(), b"value".to_vec())]);
        assert_eq!(collect(&a, 2), vec![(b"k2".to_vec(), Vec::new())]);
    }

    #[test]
    fn sort_partition_orders_by_key_and_is_stable() {
        let ks = DefaultKeySemantics;
        let mut a = SpillArena::new(1);
        a.append(0, b"m", b"1");
        a.append(0, b"a", b"2");
        a.append(0, b"m", b"3");
        a.append(0, b"a", b"4");
        a.sort_partition(0, &ks);
        assert!(is_partition_sorted(&a, 0, &ks));
        assert_eq!(
            collect(&a, 0),
            vec![
                (b"a".to_vec(), b"2".to_vec()),
                (b"a".to_vec(), b"4".to_vec()),
                (b"m".to_vec(), b"1".to_vec()),
                (b"m".to_vec(), b"3".to_vec()),
            ],
            "equal keys must keep insertion order"
        );
    }

    #[test]
    fn radix_sort_matches_comparator_reference() {
        let ks = DefaultKeySemantics;
        // Mixed lengths, shared 8-byte prefixes, duplicates, empty keys —
        // everything that stresses the tie-run fallback and stability.
        let keys: Vec<Vec<u8>> = (0..200u32)
            .map(|i| match i % 5 {
                0 => format!("{:03}", (i * 37) % 100).into_bytes(),
                1 => format!("sharedprefix-{:03}", (i * 13) % 50).into_bytes(),
                2 => Vec::new(),
                3 => vec![0u8; (i % 7) as usize],
                _ => i.wrapping_mul(2654435761).to_be_bytes().to_vec(),
            })
            .collect();
        let mut fast = SpillArena::new(1);
        let mut reference = SpillArena::new(1);
        for (i, k) in keys.iter().enumerate() {
            fast.append(0, k, &(i as u32).to_be_bytes());
            reference.append(0, k, &(i as u32).to_be_bytes());
        }
        fast.sort_partition(0, &ks);
        reference.sort_partition_by_compare(0, &ks);
        assert_eq!(
            collect(&fast, 0),
            collect(&reference, 0),
            "radix path must be byte-identical to the comparator sort"
        );
    }

    #[test]
    fn grouping_walks_equal_keys() {
        let ks = DefaultKeySemantics;
        let mut a = SpillArena::new(1);
        for (k, v) in [("a", "1"), ("b", "2"), ("a", "3"), ("c", "4"), ("a", "5")] {
            a.append(0, k.as_bytes(), v.as_bytes());
        }
        a.sort_partition(0, &ks);
        let mut groups = Vec::new();
        a.for_each_group(0, &ks, |key, values| {
            groups.push((key.to_vec(), values.len()));
        });
        assert_eq!(
            groups,
            vec![(b"a".to_vec(), 3), (b"b".to_vec(), 1), (b"c".to_vec(), 1)]
        );
    }

    #[test]
    fn clear_retains_capacity() {
        let mut a = SpillArena::new(2);
        for i in 0..100u32 {
            a.append((i % 2) as usize, &i.to_be_bytes(), &[0u8; 16]);
        }
        let data_cap = a.data.capacity();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.payload_bytes(), 0);
        assert_eq!(
            a.data.capacity(),
            data_cap,
            "clear must not free the buffer"
        );
        a.append(1, b"x", b"y");
        assert_eq!(collect(&a, 1), vec![(b"x".to_vec(), b"y".to_vec())]);
    }

    #[test]
    fn empty_records_are_staged_with_zero_payload() {
        let mut a = SpillArena::new(1);
        a.append(0, b"", b"");
        assert_eq!(a.payload_bytes(), 0);
        assert_eq!(a.partition_len(0), 1);
    }
}

//! Job counters — the engine's analogue of Hadoop's counter framework.
//!
//! The paper reads its headline metric straight off a Hadoop counter
//! ("Map output materialized bytes"); [`Counter::MapOutputMaterializedBytes`]
//! is that counter here.

use std::sync::atomic::{AtomicU64, Ordering};

/// All counters the engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Records read by mappers.
    MapInputRecords,
    /// Key/value pairs emitted by mappers (after any user-level
    /// aggregation — what actually enters the pipeline).
    MapOutputRecords,
    /// Raw serialized bytes of map output (keys + values + record
    /// framing), before compression.
    MapOutputBytes,
    /// Bytes of map output actually materialized to "disk" after the
    /// codec ran — the paper's "Map output materialized bytes".
    MapOutputMaterializedBytes,
    /// Key bytes within map output (diagnostic split of MapOutputBytes).
    MapOutputKeyBytes,
    /// Value bytes within map output.
    MapOutputValueBytes,
    /// Record-framing overhead bytes within map output.
    MapOutputFramingBytes,
    /// Records entering combiners.
    CombineInputRecords,
    /// Records leaving combiners.
    CombineOutputRecords,
    /// Spill events.
    Spills,
    /// Bytes fetched across the (simulated) network by reducers.
    ShuffleBytes,
    /// Records entering reducers after merge/group.
    ReduceInputRecords,
    /// Distinct keys reduced.
    ReduceInputGroups,
    /// Records emitted by reducers.
    ReduceOutputRecords,
    /// Bytes emitted by reducers.
    ReduceOutputBytes,
    /// Keys split by the routing path (§IV-B case 1): extra records
    /// created.
    RouteSplitRecords,
    /// Keys split by the sort path (§IV-B case 2): extra records created.
    SortSplitRecords,
    /// Nanoseconds spent inside `Codec::compress`.
    CompressNanos,
    /// Nanoseconds spent inside `Codec::decompress`.
    DecompressNanos,
    /// Nanoseconds spent in user map functions.
    MapFnNanos,
    /// Nanoseconds spent in user reduce functions.
    ReduceFnNanos,
    /// Nanoseconds spent sorting, combining and serializing spills
    /// (map-side per-record pipeline cost).
    SpillNanos,
    /// Nanoseconds spent merging, splitting and grouping at reducers
    /// (reduce-side per-record pipeline cost).
    MergeNanos,
}

/// Number of counter slots.
pub const NUM_COUNTERS: usize = Counter::MergeNanos as usize + 1;

/// Lock-free counter bank, shared across tasks.
#[derive(Debug, Default)]
pub struct Counters {
    slots: [AtomicU64; NUM_COUNTERS],
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `delta` to a counter.
    pub fn add(&self, c: Counter, delta: u64) {
        self.slots[c as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.slots[c as usize].load(Ordering::Relaxed)
    }

    /// Snapshot every counter (for reports).
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for (i, slot) in self.slots.iter().enumerate() {
            values[i] = slot.load(Ordering::Relaxed);
        }
        CounterSnapshot { values }
    }
}

/// An immutable copy of all counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; NUM_COUNTERS],
}

impl CounterSnapshot {
    /// Read a counter from the snapshot.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Compression ratio achieved on map output (1.0 = incompressible).
    pub fn materialized_ratio(&self) -> f64 {
        let raw = self.get(Counter::MapOutputBytes);
        if raw == 0 {
            return 1.0;
        }
        self.get(Counter::MapOutputMaterializedBytes) as f64 / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counters::new();
        c.add(Counter::MapOutputBytes, 100);
        c.add(Counter::MapOutputBytes, 23);
        assert_eq!(c.get(Counter::MapOutputBytes), 123);
        assert_eq!(c.get(Counter::ShuffleBytes), 0);
    }

    #[test]
    fn snapshot_is_stable() {
        let c = Counters::new();
        c.add(Counter::Spills, 2);
        let snap = c.snapshot();
        c.add(Counter::Spills, 5);
        assert_eq!(snap.get(Counter::Spills), 2);
        assert_eq!(c.get(Counter::Spills), 7);
    }

    #[test]
    fn materialized_ratio() {
        let c = Counters::new();
        c.add(Counter::MapOutputBytes, 1000);
        c.add(Counter::MapOutputMaterializedBytes, 250);
        assert_eq!(c.snapshot().materialized_ratio(), 0.25);
        assert_eq!(Counters::new().snapshot().materialized_ratio(), 1.0);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(Counters::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(Counter::MapInputRecords, 1);
                    }
                });
            }
        });
        assert_eq!(c.get(Counter::MapInputRecords), 4000);
    }
}

//! Job counters — the engine's analogue of Hadoop's counter framework.
//!
//! The paper reads its headline metric straight off a Hadoop counter
//! ("Map output materialized bytes"); [`Counter::MapOutputMaterializedBytes`]
//! is that counter here.

use std::sync::atomic::{AtomicU64, Ordering};

/// All counters the engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Records read by mappers.
    MapInputRecords,
    /// Key/value pairs emitted by mappers (after any user-level
    /// aggregation — what actually enters the pipeline).
    MapOutputRecords,
    /// Raw serialized bytes of map output (keys + values + record
    /// framing), before compression.
    MapOutputBytes,
    /// Bytes of map output actually materialized to "disk" after the
    /// codec ran — the paper's "Map output materialized bytes".
    MapOutputMaterializedBytes,
    /// Key bytes within map output (diagnostic split of MapOutputBytes).
    MapOutputKeyBytes,
    /// Value bytes within map output.
    MapOutputValueBytes,
    /// Record-framing overhead bytes within map output.
    MapOutputFramingBytes,
    /// Records entering combiners.
    CombineInputRecords,
    /// Records leaving combiners.
    CombineOutputRecords,
    /// Spill events.
    Spills,
    /// Bytes fetched across the (simulated) network by reducers.
    ShuffleBytes,
    /// Records entering reducers after merge/group.
    ReduceInputRecords,
    /// Distinct keys reduced.
    ReduceInputGroups,
    /// Records emitted by reducers.
    ReduceOutputRecords,
    /// Bytes emitted by reducers.
    ReduceOutputBytes,
    /// Keys split by the routing path (§IV-B case 1): extra records
    /// created.
    RouteSplitRecords,
    /// Keys split by the sort path (§IV-B case 2): extra records created.
    SortSplitRecords,
    /// Nanoseconds spent inside `Codec::compress`.
    CompressNanos,
    /// Nanoseconds spent inside `Codec::decompress`.
    DecompressNanos,
    /// Nanoseconds spent in user map functions.
    MapFnNanos,
    /// Nanoseconds spent in user reduce functions.
    ReduceFnNanos,
    /// Nanoseconds spent sorting, combining and serializing spills
    /// (map-side per-record pipeline cost).
    SpillNanos,
    /// Nanoseconds spent merging, splitting and grouping at reducers
    /// (reduce-side per-record pipeline cost).
    MergeNanos,
    /// Final map-output segments produced (one per reducer partition per
    /// map task, after spill merging). Each carries a fixed file header,
    /// which is why `MapOutputBytes` exceeds keys + values + framing by
    /// exactly `header * MapOutputSegments`.
    MapOutputSegments,
    /// Task attempts that failed and were re-queued for another attempt
    /// (fault-tolerance path; a clean run has zero).
    TaskRetries,
    /// Segment CRC-32 trailer mismatches detected at open time. Every
    /// detected failure triggers a retry, so on a completed job
    /// `ChecksumFailures <= TaskRetries`.
    ChecksumFailures,
    /// Faults injected by a configured [`crate::fault::FaultPlan`]
    /// (task errors, corruptions, slow-downs).
    FaultsInjected,
    /// Key bytes removed from final map-output segments by v3 front
    /// coding. The byte-split identity becomes
    /// `key + value + framing + headers ==
    /// MapOutputBytes + MapOutputKeySavedBytes` (key bytes stay
    /// logical; the saving shows up as raw bytes never written).
    MapOutputKeySavedBytes,
    /// Front-coded blocks in final map-output segments (0 for v1/v2).
    BlocksWritten,
    /// Blocks the spill merge spliced through still-encoded via the
    /// fence-prefix skip rule. Skips only happen while producing final
    /// segments, so `BlocksSkipped <= BlocksWritten`.
    BlocksSkipped,
    /// Nanoseconds reduce-side fetches spent blocked waiting for map
    /// output that had not been produced yet (distributed runtime only;
    /// the in-process shuffle hands segments over after a full barrier,
    /// so local runs report 0).
    ShuffleFetchWaitNanos,
    /// Nanoseconds the shuffle service spent writing segment bytes into
    /// worker sockets (distributed runtime only). Dividing
    /// `ShuffleBytes` by this yields the run's measured shuffle
    /// bandwidth, which the cluster model consumes.
    ShuffleTransferNanos,
    /// Segment bytes the memory-bounded shuffle store wrote to its
    /// per-partition spill files because the in-memory budget was
    /// exhausted (distributed runtime only; 0 for unbounded budgets).
    /// Feeds the cluster model's disk term.
    ShuffleSpilledBytes,
    /// Segment reads served from a spill file instead of memory
    /// (distributed runtime only). A retried reduce re-fetching a
    /// spilled segment counts again — this is disk traffic, not
    /// distinct segments.
    ShuffleSpillReads,
    /// High-water mark of shuffle bytes resident in memory at once.
    /// Max-semantics recorded once at job end, so it stays additive in
    /// the counter bank. Local runs report their full shuffle volume
    /// (everything is resident); bounded distributed runs report at
    /// most the configured budget.
    ShuffleMemHighWater,
    /// Wire bytes the shuffle service did *not* send because segments
    /// crossed compressed (distributed runtime with `--wire-codec lz`):
    /// per served segment, logical length minus transmitted length.
    /// `ShuffleBytes` stays the logical volume — this counter is the
    /// discount the cost model's network term applies. Re-fetches by
    /// retried reduces count again, mirroring `ShuffleSpillReads`;
    /// segments served raw (corrupted copies, incompressible segments)
    /// contribute zero.
    ShuffleWireBytesSaved,
    /// Spill-file bytes orphaned by republish-after-death: a retried
    /// map attempt repoints its slots, and the predecessor's spilled
    /// bytes stay dead in the append-only file until the job ends.
    /// Always `<= ShuffleSpilledBytes`; the gap between them and live
    /// spill bytes is this counter.
    ShuffleSpillDeadBytes,
    /// Nanoseconds the shuffle store spent in wire-codec compression at
    /// publish time (distributed runtime only; 0 under `identity`).
    LzCompressNanos,
    /// Nanoseconds reduce workers spent decompressing wire-compressed
    /// segments at fetch time (distributed runtime only).
    LzDecompressNanos,
}

/// Number of counter slots.
pub const NUM_COUNTERS: usize = Counter::LzDecompressNanos as usize + 1;

/// Every counter, in declaration order — for reports and exporters.
pub const ALL_COUNTERS: [Counter; NUM_COUNTERS] = [
    Counter::MapInputRecords,
    Counter::MapOutputRecords,
    Counter::MapOutputBytes,
    Counter::MapOutputMaterializedBytes,
    Counter::MapOutputKeyBytes,
    Counter::MapOutputValueBytes,
    Counter::MapOutputFramingBytes,
    Counter::CombineInputRecords,
    Counter::CombineOutputRecords,
    Counter::Spills,
    Counter::ShuffleBytes,
    Counter::ReduceInputRecords,
    Counter::ReduceInputGroups,
    Counter::ReduceOutputRecords,
    Counter::ReduceOutputBytes,
    Counter::RouteSplitRecords,
    Counter::SortSplitRecords,
    Counter::CompressNanos,
    Counter::DecompressNanos,
    Counter::MapFnNanos,
    Counter::ReduceFnNanos,
    Counter::SpillNanos,
    Counter::MergeNanos,
    Counter::MapOutputSegments,
    Counter::TaskRetries,
    Counter::ChecksumFailures,
    Counter::FaultsInjected,
    Counter::MapOutputKeySavedBytes,
    Counter::BlocksWritten,
    Counter::BlocksSkipped,
    Counter::ShuffleFetchWaitNanos,
    Counter::ShuffleTransferNanos,
    Counter::ShuffleSpilledBytes,
    Counter::ShuffleSpillReads,
    Counter::ShuffleMemHighWater,
    Counter::ShuffleWireBytesSaved,
    Counter::ShuffleSpillDeadBytes,
    Counter::LzCompressNanos,
    Counter::LzDecompressNanos,
];

impl Counter {
    /// Stable snake-case name, used as the JSON key in metrics reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MapInputRecords => "map_input_records",
            Counter::MapOutputRecords => "map_output_records",
            Counter::MapOutputBytes => "map_output_bytes",
            Counter::MapOutputMaterializedBytes => "map_output_materialized_bytes",
            Counter::MapOutputKeyBytes => "map_output_key_bytes",
            Counter::MapOutputValueBytes => "map_output_value_bytes",
            Counter::MapOutputFramingBytes => "map_output_framing_bytes",
            Counter::CombineInputRecords => "combine_input_records",
            Counter::CombineOutputRecords => "combine_output_records",
            Counter::Spills => "spills",
            Counter::ShuffleBytes => "shuffle_bytes",
            Counter::ReduceInputRecords => "reduce_input_records",
            Counter::ReduceInputGroups => "reduce_input_groups",
            Counter::ReduceOutputRecords => "reduce_output_records",
            Counter::ReduceOutputBytes => "reduce_output_bytes",
            Counter::RouteSplitRecords => "route_split_records",
            Counter::SortSplitRecords => "sort_split_records",
            Counter::CompressNanos => "compress_nanos",
            Counter::DecompressNanos => "decompress_nanos",
            Counter::MapFnNanos => "map_fn_nanos",
            Counter::ReduceFnNanos => "reduce_fn_nanos",
            Counter::SpillNanos => "spill_nanos",
            Counter::MergeNanos => "merge_nanos",
            Counter::MapOutputSegments => "map_output_segments",
            Counter::TaskRetries => "task_retries",
            Counter::ChecksumFailures => "checksum_failures",
            Counter::FaultsInjected => "faults_injected",
            Counter::MapOutputKeySavedBytes => "map_output_key_saved_bytes",
            Counter::BlocksWritten => "blocks_written",
            Counter::BlocksSkipped => "blocks_skipped",
            Counter::ShuffleFetchWaitNanos => "shuffle_fetch_wait_nanos",
            Counter::ShuffleTransferNanos => "shuffle_transfer_nanos",
            Counter::ShuffleSpilledBytes => "shuffle_spilled_bytes",
            Counter::ShuffleSpillReads => "shuffle_spill_reads",
            Counter::ShuffleMemHighWater => "shuffle_mem_high_water",
            Counter::ShuffleWireBytesSaved => "shuffle_wire_bytes_saved",
            Counter::ShuffleSpillDeadBytes => "shuffle_spill_dead_bytes",
            Counter::LzCompressNanos => "lz_compress_nanos",
            Counter::LzDecompressNanos => "lz_decompress_nanos",
        }
    }
}

/// Lock-free counter bank, shared across tasks.
#[derive(Debug)]
pub struct Counters {
    slots: [AtomicU64; NUM_COUNTERS],
}

impl Default for Counters {
    // Derived `Default` stops at 32-element arrays; the bank outgrew it.
    fn default() -> Self {
        Counters {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `delta` to a counter.
    pub fn add(&self, c: Counter, delta: u64) {
        self.slots[c as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.slots[c as usize].load(Ordering::Relaxed)
    }

    /// Snapshot every counter (for reports).
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for (i, slot) in self.slots.iter().enumerate() {
            values[i] = slot.load(Ordering::Relaxed);
        }
        CounterSnapshot { values }
    }

    /// Add every value of a snapshot into this bank. The retry path runs
    /// each task attempt against an attempt-local bank and absorbs it
    /// only on success, so failed attempts never skew the semantic
    /// counters — a faulted-but-retried job reports the same numbers as
    /// a clean one.
    pub fn absorb(&self, snapshot: &CounterSnapshot) {
        for (i, c) in ALL_COUNTERS.iter().enumerate() {
            let v = snapshot.values[i];
            if v > 0 {
                self.add(*c, v);
            }
        }
    }
}

/// An immutable copy of all counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; NUM_COUNTERS],
}

impl CounterSnapshot {
    /// Read a counter from the snapshot.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Compression ratio achieved on map output (1.0 = incompressible).
    pub fn materialized_ratio(&self) -> f64 {
        let raw = self.get(Counter::MapOutputBytes);
        if raw == 0 {
            return 1.0;
        }
        self.get(Counter::MapOutputMaterializedBytes) as f64 / raw as f64
    }

    /// Per-counter difference `self - earlier` (saturating), e.g. to
    /// isolate one job's contribution to a shared bank.
    pub fn diff(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        CounterSnapshot { values }
    }

    /// Per-counter sum of two snapshots, e.g. to aggregate a multi-job
    /// run into one report.
    pub fn merge(&self, other: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_add(other.values[i]);
        }
        CounterSnapshot { values }
    }

    /// Check the cross-counter accounting invariants that every
    /// completed job must satisfy. Returns every violated invariant.
    ///
    /// `segment_header_bytes` is the fixed per-segment file header size
    /// (`Framing::file_overhead()`), which `MapOutputBytes` includes
    /// but the key/value/framing split does not.
    pub fn check_invariants(&self, segment_header_bytes: u64) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        let key = self.get(Counter::MapOutputKeyBytes);
        let value = self.get(Counter::MapOutputValueBytes);
        let framing = self.get(Counter::MapOutputFramingBytes);
        let headers = segment_header_bytes * self.get(Counter::MapOutputSegments);
        let total = self.get(Counter::MapOutputBytes);
        // Key bytes are logical; front coding makes raw bytes smaller by
        // exactly the saved key bytes, so the split balances against
        // `total + saved` (saved is 0 for v1/v2 segments).
        let saved = self.get(Counter::MapOutputKeySavedBytes);
        if key + value + framing + headers != total + saved {
            violations.push(format!(
                "map output split does not add up: key {key} + value {value} + \
                 framing {framing} + headers {headers} != map_output_bytes {total} \
                 + key_saved {saved}"
            ));
        }
        if self.get(Counter::CombineOutputRecords) > self.get(Counter::CombineInputRecords) {
            violations.push(format!(
                "combiner created records: out {} > in {}",
                self.get(Counter::CombineOutputRecords),
                self.get(Counter::CombineInputRecords)
            ));
        }
        if self.get(Counter::ReduceInputGroups) > self.get(Counter::ReduceInputRecords) {
            violations.push(format!(
                "more reduce groups than records: {} > {}",
                self.get(Counter::ReduceInputGroups),
                self.get(Counter::ReduceInputRecords)
            ));
        }
        if self.get(Counter::ShuffleBytes) != self.get(Counter::MapOutputMaterializedBytes) {
            violations.push(format!(
                "shuffle moved {} bytes but {} were materialized",
                self.get(Counter::ShuffleBytes),
                self.get(Counter::MapOutputMaterializedBytes)
            ));
        }
        if self.get(Counter::ChecksumFailures) > self.get(Counter::TaskRetries) {
            violations.push(format!(
                "checksum failures without matching retries: {} > {} — a detected \
                 corruption must always re-queue its task",
                self.get(Counter::ChecksumFailures),
                self.get(Counter::TaskRetries)
            ));
        }
        if self.get(Counter::BlocksSkipped) > self.get(Counter::BlocksWritten) {
            violations.push(format!(
                "more blocks skipped than written: {} > {} — every spliced block \
                 must land in a final segment",
                self.get(Counter::BlocksSkipped),
                self.get(Counter::BlocksWritten)
            ));
        }
        if self.get(Counter::ShuffleSpillDeadBytes) > self.get(Counter::ShuffleSpilledBytes) {
            violations.push(format!(
                "more dead spill bytes than were ever spilled: {} > {} — dead bytes \
                 are orphaned regions of the append-only spill files",
                self.get(Counter::ShuffleSpillDeadBytes),
                self.get(Counter::ShuffleSpilledBytes)
            ));
        }
        if self.get(Counter::MapOutputKeySavedBytes) > self.get(Counter::MapOutputKeyBytes) {
            violations.push(format!(
                "front coding saved more key bytes than exist: {} > {}",
                self.get(Counter::MapOutputKeySavedBytes),
                self.get(Counter::MapOutputKeyBytes)
            ));
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counters::new();
        c.add(Counter::MapOutputBytes, 100);
        c.add(Counter::MapOutputBytes, 23);
        assert_eq!(c.get(Counter::MapOutputBytes), 123);
        assert_eq!(c.get(Counter::ShuffleBytes), 0);
    }

    #[test]
    fn snapshot_is_stable() {
        let c = Counters::new();
        c.add(Counter::Spills, 2);
        let snap = c.snapshot();
        c.add(Counter::Spills, 5);
        assert_eq!(snap.get(Counter::Spills), 2);
        assert_eq!(c.get(Counter::Spills), 7);
    }

    #[test]
    fn materialized_ratio() {
        let c = Counters::new();
        c.add(Counter::MapOutputBytes, 1000);
        c.add(Counter::MapOutputMaterializedBytes, 250);
        assert_eq!(c.snapshot().materialized_ratio(), 0.25);
        assert_eq!(Counters::new().snapshot().materialized_ratio(), 1.0);
    }

    #[test]
    fn all_counters_covers_every_slot_with_unique_names() {
        assert_eq!(ALL_COUNTERS.len(), NUM_COUNTERS);
        for (i, c) in ALL_COUNTERS.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL_COUNTERS must be in declaration order");
        }
        let mut names: Vec<&str> = ALL_COUNTERS.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS);
    }

    #[test]
    fn diff_and_merge() {
        let c = Counters::new();
        c.add(Counter::Spills, 3);
        let before = c.snapshot();
        c.add(Counter::Spills, 4);
        c.add(Counter::MapInputRecords, 10);
        let after = c.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.get(Counter::Spills), 4);
        assert_eq!(delta.get(Counter::MapInputRecords), 10);
        // diff saturates instead of wrapping
        assert_eq!(before.diff(&after).get(Counter::Spills), 0);
        let merged = before.merge(&delta);
        assert_eq!(merged, after);
    }

    #[test]
    fn invariants_hold_on_consistent_snapshot() {
        let c = Counters::new();
        c.add(Counter::MapOutputKeyBytes, 40);
        c.add(Counter::MapOutputValueBytes, 50);
        c.add(Counter::MapOutputFramingBytes, 10);
        c.add(Counter::MapOutputSegments, 2);
        c.add(Counter::MapOutputBytes, 40 + 50 + 10 + 2 * 6);
        c.add(Counter::MapOutputMaterializedBytes, 30);
        c.add(Counter::ShuffleBytes, 30);
        c.add(Counter::CombineInputRecords, 9);
        c.add(Counter::CombineOutputRecords, 4);
        c.add(Counter::ReduceInputRecords, 4);
        c.add(Counter::ReduceInputGroups, 3);
        assert!(c.snapshot().check_invariants(6).is_ok());
    }

    #[test]
    fn invariants_catch_violations() {
        let c = Counters::new();
        c.add(Counter::MapOutputBytes, 100); // split counters left at zero
        c.add(Counter::CombineOutputRecords, 5); // combiner out > in (0)
        c.add(Counter::ReduceInputGroups, 2); // groups > records (0)
        c.add(Counter::ShuffleBytes, 7); // != materialized (0)
        let errs = c.snapshot().check_invariants(6).unwrap_err();
        assert_eq!(errs.len(), 4, "all four invariants flagged: {errs:?}");
    }

    #[test]
    fn absorb_adds_a_snapshot_into_the_bank() {
        let local = Counters::new();
        local.add(Counter::MapOutputBytes, 120);
        local.add(Counter::Spills, 2);
        let shared = Counters::new();
        shared.add(Counter::MapOutputBytes, 30);
        shared.absorb(&local.snapshot());
        assert_eq!(shared.get(Counter::MapOutputBytes), 150);
        assert_eq!(shared.get(Counter::Spills), 2);
        assert_eq!(shared.get(Counter::MapInputRecords), 0);
    }

    #[test]
    fn checksum_failures_require_matching_retries() {
        let c = Counters::new();
        c.add(Counter::ChecksumFailures, 3);
        c.add(Counter::TaskRetries, 2);
        let errs = c.snapshot().check_invariants(6).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("checksum failures")),
            "{errs:?}"
        );
        c.add(Counter::TaskRetries, 1);
        assert!(c.snapshot().check_invariants(6).is_ok());
    }

    #[test]
    fn block_and_key_saved_invariants() {
        let c = Counters::new();
        c.add(Counter::BlocksSkipped, 5);
        c.add(Counter::BlocksWritten, 3);
        c.add(Counter::MapOutputKeySavedBytes, 10); // > key bytes (0)
        let errs = c.snapshot().check_invariants(6).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("blocks skipped")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("saved more key bytes")),
            "{errs:?}"
        );
        // A consistent v3 snapshot passes: 40 logical key bytes of which
        // 15 were saved by front coding.
        let c = Counters::new();
        c.add(Counter::MapOutputKeyBytes, 40);
        c.add(Counter::MapOutputKeySavedBytes, 15);
        c.add(Counter::MapOutputValueBytes, 50);
        c.add(Counter::MapOutputFramingBytes, 10);
        c.add(Counter::MapOutputSegments, 1);
        c.add(Counter::MapOutputBytes, 40 + 50 + 10 + 6 - 15);
        c.add(Counter::BlocksWritten, 4);
        c.add(Counter::BlocksSkipped, 4);
        assert!(c.snapshot().check_invariants(6).is_ok());
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(Counters::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(Counter::MapInputRecords, 1);
                    }
                });
            }
        });
        assert_eq!(c.get(Counter::MapInputRecords), 4000);
    }
}

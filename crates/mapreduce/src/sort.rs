//! Map-side sort buffer with spills, and the reducer's k-way merge
//! (Fig. 1 steps 3 and 5).
//!
//! Two merge implementations live here: [`MergeStream`], the engine's
//! streaming merge over [`RawSegment`] cursors (records are consumed as
//! the heap yields them, never materialized as a whole run), and
//! [`merge_sorted_runs`], the original materializing merge kept as the
//! reference implementation for equivalence tests and benchmarks.

use crate::error::MrError;
use crate::ifile::{RawSegment, RecordCursor, RecordSlices};
use crate::keysem::KeySemantics;
use crate::record::KvPair;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Accumulates map output for one partition, sorting and draining in
/// spill-sized runs (Hadoop's `io.sort.mb` analogue, simplified to byte
/// accounting).
pub struct SortBuffer {
    pairs: Vec<KvPair>,
    bytes: usize,
    spill_threshold: usize,
}

impl SortBuffer {
    /// A buffer that reports "please spill" past `spill_threshold` bytes.
    pub fn new(spill_threshold: usize) -> Self {
        assert!(spill_threshold > 0);
        SortBuffer {
            pairs: Vec::new(),
            bytes: 0,
            spill_threshold,
        }
    }

    /// Add a pair; returns true if the buffer should now be spilled.
    pub fn push(&mut self, pair: KvPair) -> bool {
        self.bytes += pair.payload_len();
        self.pairs.push(pair);
        self.bytes >= self.spill_threshold
    }

    /// Buffered payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Sort and drain the buffered run.
    pub fn drain_sorted(&mut self, ks: &dyn KeySemantics) -> Vec<KvPair> {
        let mut run = std::mem::take(&mut self.pairs);
        self.bytes = 0;
        run.sort_by(|a, b| ks.compare(&a.key, &b.key));
        run
    }
}

struct HeapEntry {
    pair: KvPair,
    source: usize,
    ks: Arc<dyn KeySemantics>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on source for stability.
        self.ks
            .compare(&other.pair.key, &self.pair.key)
            .then(other.source.cmp(&self.source))
    }
}

/// Merge already-sorted runs into one sorted stream (the reducer's
/// "possibly requiring multiple on-disk sort phases", done in one k-way
/// pass here).
pub fn merge_sorted_runs(runs: Vec<Vec<KvPair>>, ks: &Arc<dyn KeySemantics>) -> Vec<KvPair> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut iters: Vec<std::vec::IntoIter<KvPair>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (source, it) in iters.iter_mut().enumerate() {
        if let Some(pair) = it.next() {
            heap.push(HeapEntry {
                pair,
                source,
                ks: ks.clone(),
            });
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(HeapEntry { pair, source, .. }) = heap.pop() {
        out.push(pair);
        if let Some(next) = iters[source].next() {
            heap.push(HeapEntry {
                pair: next,
                source,
                ks: ks.clone(),
            });
        }
    }
    out
}

/// Streaming k-way merge over segment cursors: a manual min-heap of run
/// ids yields `(key, value)` slices borrowed from the decompressed
/// segment buffers, one record at a time. Ties break toward the lower
/// run id, matching [`merge_sorted_runs`]'s stability, so both merges
/// produce identical sequences.
pub struct MergeStream<'a> {
    cursors: Vec<RecordCursor<'a>>,
    heads: Vec<Option<RecordSlices<'a>>>,
    heap: Vec<usize>,
    ks: &'a dyn KeySemantics,
}

impl<'a> MergeStream<'a> {
    /// Open a merge over the given segments' records.
    pub fn new(segments: &'a [RawSegment], ks: &'a dyn KeySemantics) -> Result<Self, MrError> {
        crate::obs::hist(crate::obs::Metric::MergeFanIn, segments.len() as u64);
        let mut cursors: Vec<RecordCursor<'a>> = segments.iter().map(|s| s.cursor()).collect();
        let mut heads = Vec::with_capacity(cursors.len());
        for c in &mut cursors {
            heads.push(c.next()?);
        }
        let heap: Vec<usize> = (0..heads.len()).filter(|&r| heads[r].is_some()).collect();
        let mut stream = MergeStream {
            cursors,
            heads,
            heap,
            ks,
        };
        for i in (0..stream.heap.len() / 2).rev() {
            stream.sift_down(i);
        }
        Ok(stream)
    }

    fn run_less(&self, a: usize, b: usize) -> bool {
        let ka = self.heads[a].expect("live run").0;
        let kb = self.heads[b].expect("live run").0;
        match self.ks.compare(ka, kb) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.run_less(self.heap[l], self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.run_less(self.heap[r], self.heap[smallest]) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }

    /// The next record in merged order, or `None` when every run is
    /// exhausted.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next(&mut self) -> Result<Option<RecordSlices<'a>>, MrError> {
        let Some(&run) = self.heap.first() else {
            return Ok(None);
        };
        let record = self.heads[run].take().expect("live run");
        self.heads[run] = self.cursors[run].next()?;
        if self.heads[run].is_none() {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            self.heap.pop();
        }
        self.sift_down(0);
        Ok(Some(record))
    }
}

/// Group a sorted run by the key-semantics grouping predicate; calls `f`
/// once per group with (key, values).
pub fn for_each_group(
    sorted: &[KvPair],
    ks: &dyn KeySemantics,
    mut f: impl FnMut(&[u8], &[&[u8]]),
) {
    let mut i = 0;
    while i < sorted.len() {
        let key = &sorted[i].key;
        let mut j = i + 1;
        while j < sorted.len() && ks.group_eq(key, &sorted[j].key) {
            j += 1;
        }
        let values: Vec<&[u8]> = sorted[i..j].iter().map(|p| p.value.as_slice()).collect();
        f(key, &values);
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keysem::DefaultKeySemantics;

    fn ks() -> Arc<dyn KeySemantics> {
        Arc::new(DefaultKeySemantics)
    }

    fn pair(k: &str, v: &str) -> KvPair {
        KvPair::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn sort_buffer_reports_spill_threshold() {
        let mut b = SortBuffer::new(10);
        assert!(!b.push(pair("aaa", "x"))); // 4 bytes
        assert!(!b.push(pair("bbb", "y"))); // 8 bytes
        assert!(b.push(pair("c", "z"))); // 10 bytes → spill
        assert_eq!(b.len(), 3);
        let run = b.drain_sorted(&DefaultKeySemantics);
        assert_eq!(run[0].key, b"aaa");
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn drain_sorts_by_comparator() {
        let mut b = SortBuffer::new(1 << 20);
        for k in ["m", "a", "z", "k"] {
            b.push(pair(k, "v"));
        }
        let run = b.drain_sorted(&DefaultKeySemantics);
        let keys: Vec<&[u8]> = run.iter().map(|p| p.key.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"k", b"m", b"z"]);
    }

    #[test]
    fn merge_two_runs() {
        let a = vec![pair("a", "1"), pair("c", "3"), pair("e", "5")];
        let b = vec![pair("b", "2"), pair("d", "4")];
        let merged = merge_sorted_runs(vec![a, b], &ks());
        let keys: Vec<&[u8]> = merged.iter().map(|p| p.key.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c", b"d", b"e"]);
    }

    #[test]
    fn merge_with_duplicates_keeps_all() {
        let a = vec![pair("x", "1"), pair("x", "2")];
        let b = vec![pair("x", "3")];
        let merged = merge_sorted_runs(vec![a, b], &ks());
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().all(|p| p.key == b"x"));
    }

    #[test]
    fn merge_empty_and_single() {
        assert!(merge_sorted_runs(vec![], &ks()).is_empty());
        assert!(merge_sorted_runs(vec![vec![], vec![]], &ks()).is_empty());
        let only = vec![pair("q", "v")];
        assert_eq!(merge_sorted_runs(vec![only.clone()], &ks()), only);
    }

    #[test]
    fn merge_many_runs_is_globally_sorted() {
        let mut runs = Vec::new();
        for r in 0..8 {
            let run: Vec<KvPair> = (0..50)
                .map(|i| {
                    let k = format!("{:04}", (i * 13 + r * 7) % 997);
                    pair(&k, "v")
                })
                .collect();
            let mut run = run;
            run.sort();
            runs.push(run);
        }
        let merged = merge_sorted_runs(runs, &ks());
        assert_eq!(merged.len(), 400);
        assert!(merged.windows(2).all(|w| w[0].key <= w[1].key));
    }

    fn seal_run(pairs: &[KvPair]) -> Vec<u8> {
        use crate::ifile::{Framing, IFileWriter};
        let mut w = IFileWriter::new(Framing::IFile, Arc::new(scihadoop_compress::IdentityCodec));
        for p in pairs {
            w.append_pair(p);
        }
        w.close().data
    }

    fn stream_merge(runs: &[Vec<KvPair>], ks: &dyn KeySemantics) -> Vec<KvPair> {
        let sealed: Vec<Vec<u8>> = runs.iter().map(|r| seal_run(r)).collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &scihadoop_compress::IdentityCodec).unwrap())
            .collect();
        let mut stream = MergeStream::new(&segments, ks).unwrap();
        let mut out = Vec::new();
        while let Some((k, v)) = stream.next().unwrap() {
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        out
    }

    #[test]
    fn merge_stream_agrees_with_materializing_merge() {
        let runs = vec![
            vec![pair("a", "1"), pair("c", "3"), pair("e", "5")],
            vec![pair("b", "2"), pair("d", "4")],
            vec![],
            vec![pair("a", "6"), pair("z", "7")],
        ];
        let streamed = stream_merge(&runs, &DefaultKeySemantics);
        let materialized = merge_sorted_runs(runs, &ks());
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn merge_stream_breaks_ties_by_run_order() {
        // Duplicated keys across runs must pop in run order, exactly as
        // the BinaryHeap merge's source tie-break does.
        let runs = vec![
            vec![pair("x", "run0-a"), pair("x", "run0-b")],
            vec![pair("x", "run1")],
            vec![pair("x", "run2")],
        ];
        let streamed = stream_merge(&runs, &DefaultKeySemantics);
        let materialized = merge_sorted_runs(runs, &ks());
        assert_eq!(streamed, materialized);
        let values: Vec<&[u8]> = streamed.iter().map(|p| p.value.as_slice()).collect();
        assert_eq!(
            values,
            vec![b"run0-a".as_slice(), b"run0-b", b"run1", b"run2",]
        );
    }

    #[test]
    fn merge_stream_many_random_runs() {
        let mut runs = Vec::new();
        for r in 0..9 {
            let mut run: Vec<KvPair> = (0..60)
                .map(|i| {
                    pair(
                        &format!("{:04}", (i * 17 + r * 5) % 499),
                        &format!("{r}-{i}"),
                    )
                })
                .collect();
            run.sort();
            runs.push(run);
        }
        let streamed = stream_merge(&runs, &DefaultKeySemantics);
        let materialized = merge_sorted_runs(runs, &ks());
        assert_eq!(streamed.len(), 540);
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn grouping_walks_equal_keys() {
        let sorted = vec![
            pair("a", "1"),
            pair("a", "2"),
            pair("b", "3"),
            pair("c", "4"),
            pair("c", "5"),
        ];
        let mut groups = Vec::new();
        for_each_group(&sorted, &DefaultKeySemantics, |k, vs| {
            groups.push((k.to_vec(), vs.len()));
        });
        assert_eq!(
            groups,
            vec![(b"a".to_vec(), 2), (b"b".to_vec(), 1), (b"c".to_vec(), 2)]
        );
    }
}

//! Map-side sort buffer with spills, and the reducer's k-way merge
//! (Fig. 1 steps 3 and 5).
//!
//! Both sort stages run *comparison-free* on their fast path: keys are
//! reduced to order-preserving fixed-width prefixes
//! ([`KeySemantics::sort_prefix`]), the map-side spill sort is an LSD
//! radix sort over `(prefix, index)` pairs ([`prefix_sort_with`],
//! [`sort_pairs`]), and the reducer's streaming merge is a
//! cache-resident loser tree over segment cursors keyed by cached
//! prefixes ([`MergeStream`]). The full virtual comparator runs only
//! inside prefix tie runs, so both stages stay byte-identical to the
//! comparator paths they replaced.
//!
//! The pre-prefix implementations are retained as reference paths for
//! equivalence tests and benchmarks: [`SortBuffer`] +
//! [`merge_sorted_runs`] (the original materializing pipeline) and
//! [`HeapMergeStream`] (the streaming merge's former sift-down heap).

use crate::error::MrError;
use crate::ifile::{
    BlockCursor, EncodedBlock, Framing, PrefixedCursor, RawSegment, RecordCursor, RecordSlices,
    ScratchRecord,
};
use crate::keysem::KeySemantics;
use crate::record::KvPair;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Accumulates map output for one partition, sorting and draining in
/// spill-sized runs (Hadoop's `io.sort.mb` analogue). Byte accounting
/// includes the per-record framing overhead the configured
/// [`Framing`] will add, so the spill threshold tracks what
/// [`IFileWriter`](crate::ifile::IFileWriter) actually writes rather
/// than the bare payload.
pub struct SortBuffer {
    pairs: Vec<KvPair>,
    bytes: usize,
    spill_threshold: usize,
    framing: Framing,
}

impl SortBuffer {
    /// A buffer that reports "please spill" past `spill_threshold`
    /// bytes, sized for [`Framing::IFile`] records.
    pub fn new(spill_threshold: usize) -> Self {
        Self::with_framing(spill_threshold, Framing::IFile)
    }

    /// A buffer whose byte accounting matches the given record framing.
    pub fn with_framing(spill_threshold: usize, framing: Framing) -> Self {
        assert!(spill_threshold > 0);
        SortBuffer {
            pairs: Vec::new(),
            bytes: 0,
            spill_threshold,
            framing,
        }
    }

    /// Add a pair; returns true if the buffer should now be spilled.
    pub fn push(&mut self, pair: KvPair) -> bool {
        self.bytes += pair.payload_len() + self.framing.overhead(pair.key.len(), pair.value.len());
        self.pairs.push(pair);
        self.bytes >= self.spill_threshold
    }

    /// Buffered bytes (payload plus per-record framing overhead).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Sort and drain the buffered run.
    pub fn drain_sorted(&mut self, ks: &dyn KeySemantics) -> Vec<KvPair> {
        let mut run = std::mem::take(&mut self.pairs);
        self.bytes = 0;
        run.sort_by(|a, b| ks.compare(&a.key, &b.key));
        run
    }
}

// ---------------------------------------------------------------------------
// Prefix radix sort
// ---------------------------------------------------------------------------

/// Outcome of one prefix-radix sort: how many records landed in prefix
/// tie runs, and how many full-comparator calls resolving them cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrefixSortStats {
    /// Records inside tie runs (prefix shared with a neighbour).
    pub tie_records: u64,
    /// `KeySemantics::compare` invocations spent on tie runs.
    pub compare_calls: u64,
}

/// Below this many items the per-pass setup of a radix scatter costs
/// more than a stable binary-insertion/merge sort of the `u64` prefixes,
/// so small inputs (and small prefix tie runs recursing through
/// combiner re-sorts) take `sort_by_key` instead. Both paths are stable,
/// so the choice never changes the output.
const RADIX_MIN: usize = 64;

/// Stable LSD radix sort of `(prefix, payload)` pairs by prefix,
/// least-significant byte first. A cheap OR/AND scan finds the byte
/// lanes that actually differ across the input; only those lanes get a
/// histogram + scatter pass — for short keys the high bytes of the
/// big-endian prefix carry all the entropy, so most inputs take one or
/// two passes instead of eight.
fn radix_sort_by_prefix<T: Copy>(items: &mut Vec<(u64, T)>) {
    if items.len() < RADIX_MIN {
        items.sort_by_key(|&(p, _)| p);
        return;
    }
    let (mut all_or, mut all_and) = (0u64, u64::MAX);
    for &(p, _) in items.iter() {
        all_or |= p;
        all_and &= p;
    }
    // A bit is set in `diff` iff some pair of items disagrees on it; a
    // byte lane with no such bit is uniform and its pass is a no-op.
    let diff = all_or ^ all_and;
    if diff == 0 {
        return; // all prefixes equal — stability says leave them be
    }
    let mut src = std::mem::take(items);
    let mut dst = src.clone();
    for d in 0..8 {
        let shift = 8 * d;
        if (diff >> shift) & 0xFF == 0 {
            continue;
        }
        let mut counts = [0usize; 256];
        for &(p, _) in &src {
            counts[((p >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (off, &c) in offsets.iter_mut().zip(counts.iter()) {
            *off = acc;
            acc += c;
        }
        for &item in &src {
            let digit = ((item.0 >> shift) & 0xFF) as usize;
            dst[offsets[digit]] = item;
            offsets[digit] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *items = src;
}

/// Sort `(prefix, payload)` pairs into full key order: radix-sort by
/// prefix, then stable-sort each prefix tie run with the real
/// comparator (`key_of` maps a payload back to its key bytes). LSD
/// radix is stable and [`KeySemantics::sort_prefix`] is order-
/// preserving, so the result is byte-identical to a stable
/// whole-comparator sort; the comparator simply never runs outside tie
/// runs.
pub(crate) fn prefix_sort_with<'k, T: Copy>(
    items: &mut Vec<(u64, T)>,
    ks: &dyn KeySemantics,
    key_of: impl Fn(T) -> &'k [u8],
) -> PrefixSortStats {
    // Comparison-free presorted detection: strictly increasing prefixes
    // prove the keys are already in strictly ascending order (prefix <
    // implies compare Less), so there is nothing to do. Map output is
    // often emitted in near-key order (e.g. grid walks), making this the
    // common case; ties disqualify the shortcut since their relative
    // order is unproven.
    if items.windows(2).all(|w| w[0].0 < w[1].0) {
        return PrefixSortStats::default();
    }
    radix_sort_by_prefix(items);
    let mut stats = PrefixSortStats::default();
    let mut i = 0;
    while i < items.len() {
        let prefix = items[i].0;
        let mut j = i + 1;
        while j < items.len() && items[j].0 == prefix {
            j += 1;
        }
        if j - i > 1 {
            stats.tie_records += (j - i) as u64;
            items[i..j].sort_by(|a, b| {
                stats.compare_calls += 1;
                ks.compare(key_of(a.1), key_of(b.1))
            });
        }
        i = j;
    }
    stats
}

/// Stable sort of owned pairs by key through the prefix radix path —
/// byte-identical to `pairs.sort_by(|a, b| ks.compare(&a.key, &b.key))`
/// but comparison-free outside prefix tie runs. Used for the combiner
/// output re-sort and the reducer's windowed sort-split re-sort.
pub fn sort_pairs(pairs: &mut Vec<KvPair>, ks: &dyn KeySemantics) {
    if pairs.len() < 2 {
        return;
    }
    let mut keyed: Vec<(u64, usize)> = pairs
        .iter()
        .enumerate()
        .map(|(i, p)| (ks.sort_prefix(&p.key), i))
        .collect();
    prefix_sort_with(&mut keyed, ks, |i| pairs[i].key.as_slice());
    let mut slots: Vec<Option<KvPair>> = pairs.drain(..).map(Some).collect();
    pairs.extend(
        keyed
            .iter()
            .map(|&(_, i)| slots[i].take().expect("permutation visits each slot once")),
    );
    debug_assert!(pairs
        .windows(2)
        .all(|w| ks.compare(&w[0].key, &w[1].key) != Ordering::Greater));
}

// ---------------------------------------------------------------------------
// Materializing reference merge
// ---------------------------------------------------------------------------

struct HeapEntry<'a> {
    pair: KvPair,
    source: usize,
    ks: &'a dyn KeySemantics,
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry<'_> {}
impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on source for stability.
        self.ks
            .compare(&other.pair.key, &self.pair.key)
            .then(other.source.cmp(&self.source))
    }
}

/// Merge already-sorted runs into one sorted stream (the reducer's
/// "possibly requiring multiple on-disk sort phases", done in one k-way
/// pass here). Reference implementation; the engine streams through
/// [`MergeStream`].
pub fn merge_sorted_runs(runs: Vec<Vec<KvPair>>, ks: &dyn KeySemantics) -> Vec<KvPair> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut iters: Vec<std::vec::IntoIter<KvPair>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (source, it) in iters.iter_mut().enumerate() {
        if let Some(pair) = it.next() {
            heap.push(HeapEntry { pair, source, ks });
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(HeapEntry { pair, source, .. }) = heap.pop() {
        out.push(pair);
        if let Some(next) = iters[source].next() {
            heap.push(HeapEntry {
                pair: next,
                source,
                ks,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Streaming merges
// ---------------------------------------------------------------------------

/// The streaming merge's former implementation: a manual sift-down
/// min-heap of run ids calling the virtual comparator at every heap
/// operation. Retained as the reference the loser-tree [`MergeStream`]
/// is pinned byte-identical against (equivalence tests,
/// `bench_shuffle_hotpath`).
pub struct HeapMergeStream<'a> {
    cursors: Vec<RecordCursor<'a>>,
    heads: Vec<Option<RecordSlices<'a>>>,
    heap: Vec<usize>,
    ks: &'a dyn KeySemantics,
}

impl<'a> HeapMergeStream<'a> {
    /// Open a merge over the given segments' records.
    pub fn new(segments: &'a [RawSegment], ks: &'a dyn KeySemantics) -> Result<Self, MrError> {
        reject_block_segments(segments)?;
        let mut cursors: Vec<RecordCursor<'a>> = segments.iter().map(|s| s.cursor()).collect();
        let mut heads = Vec::with_capacity(cursors.len());
        for c in &mut cursors {
            heads.push(c.next()?);
        }
        let heap: Vec<usize> = (0..heads.len()).filter(|&r| heads[r].is_some()).collect();
        let mut stream = HeapMergeStream {
            cursors,
            heads,
            heap,
            ks,
        };
        for i in (0..stream.heap.len() / 2).rev() {
            stream.sift_down(i);
        }
        Ok(stream)
    }

    fn run_less(&self, a: usize, b: usize) -> bool {
        let ka = self.heads[a].expect("live run").0;
        let kb = self.heads[b].expect("live run").0;
        match self.ks.compare(ka, kb) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.run_less(self.heap[l], self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.run_less(self.heap[r], self.heap[smallest]) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }

    /// The next record in merged order, or `None` when every run is
    /// exhausted.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next(&mut self) -> Result<Option<RecordSlices<'a>>, MrError> {
        let Some(&run) = self.heap.first() else {
            return Ok(None);
        };
        let record = self.heads[run].take().expect("live run");
        self.heads[run] = self.cursors[run].next()?;
        if self.heads[run].is_none() {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            self.heap.pop();
        }
        self.sift_down(0);
        Ok(Some(record))
    }
}

/// Streaming k-way merge over segment cursors: a cache-resident *loser
/// tree* of run ids yields `(key, value)` slices borrowed from the
/// decompressed segment buffers, one record at a time.
///
/// Every run caches its head record's [`KeySemantics::sort_prefix`]
/// (computed once per record by a [`PrefixedCursor`]); tree matches
/// compare two cached `u64`s and fall back to the virtual comparator
/// only on prefix ties. Advancing the winner replays exactly one
/// leaf-to-root path (⌈log₂ k⌉ matches) against the stored losers —
/// unlike a sift-down heap there is no second comparison per level.
/// Ties break toward the lower run id, matching [`merge_sorted_runs`]
/// and [`HeapMergeStream`] exactly, so all three merges produce
/// identical sequences.
pub struct MergeStream<'a> {
    cursors: Vec<PrefixedCursor<'a>>,
    heads: Vec<Option<RecordSlices<'a>>>,
    /// Cached sort prefix of each live head (stale once a run exhausts;
    /// exhausted runs are recognized by `heads[run].is_none()`).
    prefixes: Vec<u64>,
    /// Loser tree over `k` runs: `tree[0]` is the overall winner,
    /// `tree[1..k]` hold the losers of internal matches, and run `i`'s
    /// leaf sits implicitly at index `k + i`.
    tree: Vec<usize>,
    ks: &'a dyn KeySemantics,
    /// Comparator fallbacks on prefix ties, exported as
    /// `merge_compare_calls` when the stream drops.
    compare_calls: u64,
    #[cfg(debug_assertions)]
    last_key: Option<Vec<u8>>,
}

impl<'a> MergeStream<'a> {
    /// Open a merge over the given segments' records.
    pub fn new(segments: &'a [RawSegment], ks: &'a dyn KeySemantics) -> Result<Self, MrError> {
        reject_block_segments(segments)?;
        crate::obs::hist(crate::obs::Metric::MergeFanIn, segments.len() as u64);
        let mut cursors: Vec<PrefixedCursor<'a>> =
            segments.iter().map(|s| s.prefixed_cursor(ks)).collect();
        let mut heads = Vec::with_capacity(cursors.len());
        let mut prefixes = Vec::with_capacity(cursors.len());
        for c in &mut cursors {
            match c.next()? {
                Some((prefix, record)) => {
                    heads.push(Some(record));
                    prefixes.push(prefix);
                }
                None => {
                    heads.push(None);
                    prefixes.push(0);
                }
            }
        }
        let k = cursors.len();
        let mut stream = MergeStream {
            cursors,
            heads,
            prefixes,
            tree: vec![0; k],
            ks,
            compare_calls: 0,
            #[cfg(debug_assertions)]
            last_key: None,
        };
        stream.build();
        Ok(stream)
    }

    /// Whether run `a`'s head sorts strictly before run `b`'s. Exhausted
    /// runs lose every match; among themselves they order by id, which
    /// keeps the relation total.
    fn run_less(&mut self, a: usize, b: usize) -> bool {
        match (self.heads[a], self.heads[b]) {
            (Some(ha), Some(hb)) => match self.prefixes[a].cmp(&self.prefixes[b]) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    self.compare_calls += 1;
                    match self.ks.compare(ha.0, hb.0) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => a < b,
                    }
                }
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Build the tree bottom-up: compute each internal match's winner,
    /// store its loser, crown `tree[0]`.
    fn build(&mut self) {
        let k = self.cursors.len();
        if k == 0 {
            return;
        }
        let mut winner = vec![0usize; 2 * k];
        for (i, w) in winner[k..].iter_mut().enumerate() {
            *w = i;
        }
        for node in (1..k).rev() {
            let (a, b) = (winner[2 * node], winner[2 * node + 1]);
            let (win, lose) = if self.run_less(b, a) { (b, a) } else { (a, b) };
            winner[node] = win;
            self.tree[node] = lose;
        }
        self.tree[0] = winner[1];
    }

    /// Replay the matches on `run`'s leaf-to-root path after its head
    /// changed: the contender plays each stored loser, the winner climbs.
    fn replay(&mut self, mut contender: usize) {
        let k = self.cursors.len();
        let mut node = (contender + k) / 2;
        while node > 0 {
            let resident = self.tree[node];
            if self.run_less(resident, contender) {
                self.tree[node] = contender;
                contender = resident;
            }
            node /= 2;
        }
        self.tree[0] = contender;
    }

    /// The next record in merged order, or `None` when every run is
    /// exhausted.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next(&mut self) -> Result<Option<RecordSlices<'a>>, MrError> {
        let Some(&winner) = self.tree.first() else {
            return Ok(None);
        };
        let Some(record) = self.heads[winner].take() else {
            return Ok(None);
        };
        if let Some((prefix, next)) = self.cursors[winner].next()? {
            self.prefixes[winner] = prefix;
            self.heads[winner] = Some(next);
        }
        self.replay(winner);
        // Debug builds cross-check the merged order with the full
        // comparator per record — which means only release builds
        // exercise the comparison-free path alone (see the CI
        // sort-smoke job, which runs the equivalence suite --release).
        #[cfg(debug_assertions)]
        {
            if let Some(prev) = &self.last_key {
                debug_assert!(
                    self.ks.compare(prev, record.0) != Ordering::Greater,
                    "loser-tree merge yielded out-of-order records"
                );
            }
            self.last_key = Some(record.0.to_vec());
        }
        Ok(Some(record))
    }

    /// Comparator fallbacks taken on prefix ties so far.
    pub fn compare_calls(&self) -> u64 {
        self.compare_calls
    }
}

impl Drop for MergeStream<'_> {
    fn drop(&mut self) {
        crate::obs::hist(crate::obs::Metric::MergeCompareCalls, self.compare_calls);
    }
}

/// Flat merges cannot parse v3 block segments; dispatchers choose
/// [`BlockMergeStream`] via [`RawSegment::is_block_format`].
fn reject_block_segments(segments: &[RawSegment]) -> Result<(), MrError> {
    if segments.iter().any(|s| s.is_block_format()) {
        return Err(MrError::Intermediate(
            "flat merge over block-format (v3) segments — use BlockMergeStream".into(),
        ));
    }
    Ok(())
}

/// One run of a [`BlockMergeStream`]: either a flat (v1/v2) prefixed
/// cursor with its buffered head, or a v3 [`BlockCursor`] whose head
/// lives in the cursor's incremental key buffer.
enum RunCursor<'a> {
    Flat {
        cursor: PrefixedCursor<'a>,
        head: Option<(u64, RecordSlices<'a>)>,
    },
    Blocks {
        cursor: BlockCursor<'a>,
        /// Cached sort prefix of the cursor's current key.
        prefix: u64,
        live: bool,
    },
}

impl<'a> RunCursor<'a> {
    fn open(seg: &'a RawSegment, ks: &'a dyn KeySemantics) -> Result<Self, MrError> {
        if seg.is_block_format() {
            let mut cursor = seg.block_cursor();
            let live = cursor.advance()?;
            let prefix = if live {
                ks.sort_prefix(cursor.key())
            } else {
                0
            };
            Ok(RunCursor::Blocks {
                cursor,
                prefix,
                live,
            })
        } else {
            let mut cursor = seg.prefixed_cursor(ks);
            let head = cursor.next()?;
            Ok(RunCursor::Flat { cursor, head })
        }
    }

    #[inline]
    fn live(&self) -> bool {
        match self {
            RunCursor::Flat { head, .. } => head.is_some(),
            RunCursor::Blocks { live, .. } => *live,
        }
    }

    #[inline]
    fn prefix(&self) -> u64 {
        match self {
            RunCursor::Flat { head, .. } => head.expect("live run").0,
            RunCursor::Blocks { prefix, .. } => *prefix,
        }
    }

    #[inline]
    fn key(&self) -> &[u8] {
        match self {
            RunCursor::Flat { head, .. } => head.as_ref().expect("live run").1 .0,
            RunCursor::Blocks { cursor, .. } => cursor.key(),
        }
    }

    /// Advance to the next record and report the new `(live, prefix)`
    /// state in one pass, so the merge loop updates its mirrored arrays
    /// without re-matching on the enum.
    #[inline]
    fn advance(&mut self, ks: &dyn KeySemantics) -> Result<(bool, u64), MrError> {
        match self {
            RunCursor::Flat { cursor, head } => {
                *head = cursor.next()?;
                Ok(match head {
                    Some((prefix, _)) => (true, *prefix),
                    None => (false, 0),
                })
            }
            RunCursor::Blocks {
                cursor,
                prefix,
                live,
            } => {
                *live = cursor.advance()?;
                if *live {
                    *prefix = ks.sort_prefix(cursor.key());
                }
                Ok((*live, *prefix))
            }
        }
    }

    /// The current record's `(key, value)` slices in one enum match.
    #[inline]
    fn emit(&self) -> (&[u8], &'a [u8]) {
        match self {
            RunCursor::Flat { head, .. } => head.as_ref().expect("live run").1,
            RunCursor::Blocks { cursor, .. } => (cursor.key(), cursor.value()),
        }
    }
}

/// One item yielded by [`BlockMergeStream::next_item`].
pub enum MergeItem<'s, 'a> {
    /// One record in merged order. The key borrows the stream's
    /// incremental scratch buffer (valid until the next call), the
    /// value borrows the segment.
    Record(&'s [u8], &'a [u8]),
    /// A whole still-encoded v3 block, proven by fence-prefix
    /// comparison to sort entirely before every other live run's head —
    /// splice it through with
    /// [`IFileWriter::append_encoded_block`](crate::ifile::IFileWriter::append_encoded_block)
    /// without decoding.
    Block(EncodedBlock<'a>),
}

/// Loser-tree merge over mixed flat (v1/v2) and block-format (v3)
/// segments. Two v3-specific fast paths ride on the fence-key index:
///
/// * **Block skipping** ([`BlockMergeStream::next_item`]): when the
///   winning run's head is the first record of a fully undecoded block
///   whose *next* fence prefix is strictly below every other live
///   run's head prefix, the whole block sorts before all of them (the
///   [`KeySemantics::sort_prefix`] contract: `prefix(a) < prefix(b)`
///   implies `a < b`, and monotonicity along the sorted run bounds
///   every key in the block by the next fence). The block is emitted
///   still-encoded — no decode, no re-encode, no per-record tree work.
///   Strict inequality sidesteps the tie-break, so the record stream
///   is byte-identical to the record-at-a-time merge.
/// * **Burst emission** ([`BlockMergeStream::next`]): reducers need
///   records, not blocks, so the same skip proof instead suspends tree
///   replays for the length of the block — the winner cannot change
///   until the block is drained, so one replay at the block boundary
///   replaces one per record.
///
/// Inside contended blocks each key is reconstructed incrementally in
/// the [`BlockCursor`]'s single reused buffer. Ties break toward the
/// lower run id exactly like [`MergeStream`].
pub struct BlockMergeStream<'a> {
    runs: Vec<RunCursor<'a>>,
    /// Loser tree over `k` runs (same shape as [`MergeStream`]).
    tree: Vec<usize>,
    /// Cached head prefixes, mirrored out of the [`RunCursor`]s so the
    /// replay inner loop reads flat arrays instead of matching on the
    /// run enum (same layout as [`MergeStream::prefixes`]).
    prefixes: Vec<u64>,
    /// Run liveness, mirrored for the same reason.
    lives: Vec<bool>,
    ks: &'a dyn KeySemantics,
    compare_calls: u64,
    /// Blocks emitted still-encoded (skip hits).
    blocks_copied: u64,
    /// The previous item's winner still needs its advance + replay.
    pending_advance: bool,
    /// Records left to emit from an uncontended block without replays.
    burst: u64,
    #[cfg(debug_assertions)]
    last_key: Option<Vec<u8>>,
}

impl<'a> BlockMergeStream<'a> {
    /// Open a merge over the given segments' records.
    pub fn new(segments: &'a [RawSegment], ks: &'a dyn KeySemantics) -> Result<Self, MrError> {
        crate::obs::hist(crate::obs::Metric::MergeFanIn, segments.len() as u64);
        let mut runs = Vec::with_capacity(segments.len());
        for seg in segments {
            runs.push(RunCursor::open(seg, ks)?);
        }
        let k = runs.len();
        let lives: Vec<bool> = runs.iter().map(|r| r.live()).collect();
        let prefixes: Vec<u64> = runs
            .iter()
            .map(|r| if r.live() { r.prefix() } else { 0 })
            .collect();
        let mut stream = BlockMergeStream {
            runs,
            tree: vec![0; k],
            prefixes,
            lives,
            ks,
            compare_calls: 0,
            blocks_copied: 0,
            pending_advance: false,
            burst: 0,
            #[cfg(debug_assertions)]
            last_key: None,
        };
        stream.build();
        Ok(stream)
    }

    /// Whether run `a`'s head sorts strictly before run `b`'s (same
    /// relation as [`MergeStream::run_less`], via the mirrored arrays).
    fn run_less(&mut self, a: usize, b: usize) -> bool {
        match (self.lives[a], self.lives[b]) {
            (true, true) => match self.prefixes[a].cmp(&self.prefixes[b]) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    self.compare_calls += 1;
                    match self.ks.compare(self.runs[a].key(), self.runs[b].key()) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => a < b,
                    }
                }
            },
            (true, false) => true,
            (false, true) => false,
            (false, false) => a < b,
        }
    }

    fn build(&mut self) {
        let k = self.runs.len();
        if k == 0 {
            return;
        }
        let mut winner = vec![0usize; 2 * k];
        for (i, w) in winner[k..].iter_mut().enumerate() {
            *w = i;
        }
        for node in (1..k).rev() {
            let (a, b) = (winner[2 * node], winner[2 * node + 1]);
            let (win, lose) = if self.run_less(b, a) { (b, a) } else { (a, b) };
            winner[node] = win;
            self.tree[node] = lose;
        }
        self.tree[0] = winner[1];
    }

    fn replay(&mut self, mut contender: usize) {
        let k = self.runs.len();
        let mut node = (contender + k) / 2;
        while node > 0 {
            let resident = self.tree[node];
            if self.run_less(resident, contender) {
                self.tree[node] = contender;
                contender = resident;
            }
            node /= 2;
        }
        self.tree[0] = contender;
    }

    /// Perform the deferred advance of the previous winner. Deferring
    /// is what lets the emitted key borrow the cursor's reused buffer:
    /// the buffer is only overwritten once the caller asks for the
    /// next item.
    #[inline]
    fn settle(&mut self) -> Result<(), MrError> {
        if !self.pending_advance {
            return Ok(());
        }
        self.pending_advance = false;
        let Some(&w) = self.tree.first() else {
            return Ok(());
        };
        let ks = self.ks;
        let (live, prefix) = self.runs[w].advance(ks)?;
        self.lives[w] = live;
        if live {
            self.prefixes[w] = prefix;
        }
        if self.burst > 1 {
            // Still inside an uncontended block: the winner cannot
            // change, so skip the replay.
            self.burst -= 1;
        } else {
            self.burst = 0;
            self.replay(w);
        }
        Ok(())
    }

    /// True when every key of `w`'s current block sorts strictly before
    /// every other live run's head: the next fence's cached prefix
    /// upper-bounds the block, and strict `u64` inequality implies
    /// strict key order. A last block (no next fence) qualifies only
    /// when no other run is live.
    fn uncontended(&self, w: usize) -> bool {
        let RunCursor::Blocks { cursor, .. } = &self.runs[w] else {
            return false;
        };
        match cursor.next_fence_prefix() {
            Some(ub) => {
                (0..self.runs.len()).all(|r| r == w || !self.lives[r] || ub < self.prefixes[r])
            }
            None => (0..self.runs.len()).all(|r| r == w || !self.lives[r]),
        }
    }

    /// Whether `w`'s head opens a fully undecoded block (the skip/burst
    /// precondition).
    fn at_fresh_block(&self, w: usize) -> bool {
        matches!(&self.runs[w], RunCursor::Blocks { cursor, .. } if cursor.at_block_start())
    }

    /// The next record in merged order, or `None` when every run is
    /// exhausted. The key slice borrows the stream (valid until the
    /// next call); the value borrows the segment.
    #[allow(clippy::should_implement_trait)] // fallible, unlike Iterator
    pub fn next<'s>(&'s mut self) -> Result<Option<ScratchRecord<'s, 'a>>, MrError> {
        self.settle()?;
        let Some(&w) = self.tree.first() else {
            return Ok(None);
        };
        if !self.lives[w] {
            return Ok(None);
        }
        if self.burst == 0 && self.at_fresh_block(w) && self.uncontended(w) {
            if let RunCursor::Blocks { cursor, .. } = &self.runs[w] {
                self.burst = cursor.block_remaining();
                self.blocks_copied += 1;
            }
        }
        #[cfg(debug_assertions)]
        self.debug_check_record(w);
        self.pending_advance = true;
        Ok(Some(self.runs[w].emit()))
    }

    /// The next item in merged order: a record, or — when the winning
    /// run's next block is provably below every other live head — a
    /// whole still-encoded block. Spill merges splice block items
    /// through verbatim.
    pub fn next_item<'s>(&'s mut self) -> Result<Option<MergeItem<'s, 'a>>, MrError> {
        self.settle()?;
        let Some(&w) = self.tree.first() else {
            return Ok(None);
        };
        if !self.lives[w] {
            return Ok(None);
        }
        if self.burst == 0 && self.at_fresh_block(w) && self.uncontended(w) {
            let ks = self.ks;
            let blk = match &mut self.runs[w] {
                RunCursor::Blocks {
                    cursor,
                    prefix,
                    live,
                } => {
                    let blk = cursor.take_block()?;
                    *live = cursor.is_live();
                    if *live {
                        *prefix = ks.sort_prefix(cursor.key());
                    }
                    blk
                }
                RunCursor::Flat { .. } => unreachable!("at_fresh_block implies a block run"),
            };
            self.lives[w] = self.runs[w].live();
            if self.lives[w] {
                self.prefixes[w] = self.runs[w].prefix();
            }
            self.blocks_copied += 1;
            self.replay(w);
            #[cfg(debug_assertions)]
            self.debug_check_block(w, &blk);
            return Ok(Some(MergeItem::Block(blk)));
        }
        #[cfg(debug_assertions)]
        self.debug_check_record(w);
        self.pending_advance = true;
        let (key, value) = self.runs[w].emit();
        Ok(Some(MergeItem::Record(key, value)))
    }

    /// Comparator fallbacks taken on prefix ties so far.
    pub fn compare_calls(&self) -> u64 {
        self.compare_calls
    }

    /// Blocks emitted wholesale (skip hits) so far — via
    /// [`MergeItem::Block`] or burst emission.
    pub fn blocks_copied(&self) -> u64 {
        self.blocks_copied
    }

    /// Debug builds cross-check merged order with the full comparator
    /// per record — only release builds exercise the comparison-free
    /// path alone (mirrors [`MergeStream`]).
    #[cfg(debug_assertions)]
    fn debug_check_record(&mut self, w: usize) {
        if let Some(prev) = &self.last_key {
            debug_assert!(
                self.ks.compare(prev, self.runs[w].key()) != Ordering::Greater,
                "block merge yielded out-of-order records"
            );
        }
        self.last_key = Some(self.runs[w].key().to_vec());
    }

    /// Debug builds decode every skipped block and verify (a) its
    /// records are in order and follow the previous emission, and
    /// (b) its last key sorts strictly before every other live head —
    /// i.e. the fence-prefix proof was sound.
    #[cfg(debug_assertions)]
    fn debug_check_block(&mut self, w: usize, blk: &EncodedBlock<'a>) {
        let ks = self.ks;
        let mut prev = self.last_key.take();
        blk.for_each_record(|k, _| {
            if let Some(p) = &prev {
                debug_assert!(
                    ks.compare(p, k) != Ordering::Greater,
                    "skipped block out of order"
                );
            }
            prev = Some(k.to_vec());
        })
        .expect("emitted block must decode");
        if let Some(last) = &prev {
            for (r, run) in self.runs.iter().enumerate() {
                debug_assert!(
                    r == w || !run.live() || ks.compare(last, run.key()) == Ordering::Less,
                    "skipped block not strictly below run {r}'s head"
                );
            }
        }
        self.last_key = prev;
    }
}

impl Drop for BlockMergeStream<'_> {
    fn drop(&mut self) {
        crate::obs::hist_many(&[
            (crate::obs::Metric::MergeCompareCalls, self.compare_calls),
            (crate::obs::Metric::MergeBlocksSkipped, self.blocks_copied),
        ]);
    }
}

/// Group a sorted run by the key-semantics grouping predicate; calls `f`
/// once per group with (key, values).
pub fn for_each_group(
    sorted: &[KvPair],
    ks: &dyn KeySemantics,
    mut f: impl FnMut(&[u8], &[&[u8]]),
) {
    let mut i = 0;
    while i < sorted.len() {
        let key = &sorted[i].key;
        let mut j = i + 1;
        while j < sorted.len() && ks.group_eq(key, &sorted[j].key) {
            j += 1;
        }
        let values: Vec<&[u8]> = sorted[i..j].iter().map(|p| p.value.as_slice()).collect();
        f(key, &values);
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keysem::DefaultKeySemantics;
    use std::sync::Arc;

    fn pair(k: &str, v: &str) -> KvPair {
        KvPair::new(k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn sort_buffer_reports_spill_threshold() {
        let mut b = SortBuffer::new(16);
        assert!(!b.push(pair("aaa", "x"))); // 4 payload + 2 framing = 6
        assert!(!b.push(pair("bbb", "y"))); // 12
        assert!(b.push(pair("c", "z"))); // 16 → spill
        assert_eq!(b.len(), 3);
        let run = b.drain_sorted(&DefaultKeySemantics);
        assert_eq!(run[0].key, b"aaa");
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn sort_buffer_accounting_matches_ifile_writer() {
        use crate::ifile::IFileWriter;
        // Byte accounting must equal what the writer will materialize
        // (minus the constant file header), for both framings and for
        // records whose lengths need multi-byte vints.
        for framing in [Framing::SequenceFile, Framing::IFile] {
            let mut b = SortBuffer::with_framing(usize::MAX >> 1, framing);
            let mut w = IFileWriter::new(framing, Arc::new(scihadoop_compress::IdentityCodec));
            for (klen, vlen) in [(0usize, 0usize), (3, 5), (16, 4), (200, 1), (1000, 4)] {
                b.push(KvPair::new(vec![7u8; klen], vec![9u8; vlen]));
                w.append(&vec![7u8; klen], &vec![9u8; vlen]);
            }
            assert_eq!(
                b.bytes(),
                w.raw_len() - framing.file_overhead(),
                "framing {framing:?}: spill sizing must match the writer"
            );
        }
    }

    #[test]
    fn drain_sorts_by_comparator() {
        let mut b = SortBuffer::new(1 << 20);
        for k in ["m", "a", "z", "k"] {
            b.push(pair(k, "v"));
        }
        let run = b.drain_sorted(&DefaultKeySemantics);
        let keys: Vec<&[u8]> = run.iter().map(|p| p.key.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"k", b"m", b"z"]);
    }

    #[test]
    fn merge_two_runs() {
        let a = vec![pair("a", "1"), pair("c", "3"), pair("e", "5")];
        let b = vec![pair("b", "2"), pair("d", "4")];
        let merged = merge_sorted_runs(vec![a, b], &DefaultKeySemantics);
        let keys: Vec<&[u8]> = merged.iter().map(|p| p.key.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c", b"d", b"e"]);
    }

    #[test]
    fn merge_with_duplicates_keeps_all() {
        let a = vec![pair("x", "1"), pair("x", "2")];
        let b = vec![pair("x", "3")];
        let merged = merge_sorted_runs(vec![a, b], &DefaultKeySemantics);
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().all(|p| p.key == b"x"));
    }

    #[test]
    fn merge_empty_and_single() {
        assert!(merge_sorted_runs(vec![], &DefaultKeySemantics).is_empty());
        assert!(merge_sorted_runs(vec![vec![], vec![]], &DefaultKeySemantics).is_empty());
        let only = vec![pair("q", "v")];
        assert_eq!(
            merge_sorted_runs(vec![only.clone()], &DefaultKeySemantics),
            only
        );
    }

    #[test]
    fn merge_many_runs_is_globally_sorted() {
        let mut runs = Vec::new();
        for r in 0..8 {
            let run: Vec<KvPair> = (0..50)
                .map(|i| {
                    let k = format!("{:04}", (i * 13 + r * 7) % 997);
                    pair(&k, "v")
                })
                .collect();
            let mut run = run;
            run.sort();
            runs.push(run);
        }
        let merged = merge_sorted_runs(runs, &DefaultKeySemantics);
        assert_eq!(merged.len(), 400);
        assert!(merged.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn sort_pairs_matches_stable_comparator_sort() {
        let ks = DefaultKeySemantics;
        // Duplicate keys with distinct values pin stability; keys longer
        // than 8 bytes force prefix tie runs.
        let mut pairs = vec![
            pair("abcdefgh-late", "1"),
            pair("zz", "2"),
            pair("abcdefgh-early", "3"),
            pair("zz", "4"),
            pair("", "5"),
            pair("abcdefgh-late", "6"),
            pair("\u{0}", "7"),
        ];
        let mut expected = pairs.clone();
        expected.sort_by(|a, b| ks.compare(&a.key, &b.key));
        sort_pairs(&mut pairs, &ks);
        assert_eq!(pairs, expected);
    }

    #[test]
    fn prefix_sort_stats_count_ties_and_calls() {
        let ks = DefaultKeySemantics;
        // Three keys share the 8-byte prefix "aaaaaaaa"; two are unique.
        let keys: Vec<&[u8]> = vec![b"aaaaaaaa-z", b"b", b"aaaaaaaa-a", b"c", b"aaaaaaaa-m"];
        let mut keyed: Vec<(u64, usize)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (ks.sort_prefix(k), i))
            .collect();
        let stats = prefix_sort_with(&mut keyed, &ks, |i| keys[i]);
        assert_eq!(stats.tie_records, 3);
        assert!(stats.compare_calls >= 2, "tie run of 3 needs >= 2 compares");
        let order: Vec<usize> = keyed.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, vec![2, 4, 0, 1, 3]);
    }

    #[test]
    fn radix_sort_is_stable_across_equal_prefixes() {
        // Small input: the sort_by_key fallback, itself stable.
        let mut items: Vec<(u64, usize)> = vec![(5, 0), (1, 1), (5, 2), (0, 3), (5, 4), (1, 5)];
        radix_sort_by_prefix(&mut items);
        assert_eq!(
            items,
            vec![(0, 3), (1, 1), (1, 5), (5, 0), (5, 2), (5, 4)],
            "equal prefixes must keep insertion order"
        );
        // Large input: the real scatter passes, pinned against std's
        // stable sort. Heavy duplication means stability is load-bearing.
        let mut items: Vec<(u64, usize)> = (0..300)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % 5, i))
            .collect();
        let mut expected = items.clone();
        expected.sort_by_key(|&(p, _)| p);
        radix_sort_by_prefix(&mut items);
        assert_eq!(items, expected, "scatter passes must keep insertion order");
    }

    #[test]
    fn radix_sort_covers_all_digit_positions() {
        // Prefixes differing only in high bytes, only in low bytes, and
        // across the full range — exercises lane skipping and the
        // scatter on every byte lane. Repeated past RADIX_MIN so the
        // radix path (not the small-input fallback) runs.
        let patterns = [
            u64::MAX,
            0,
            1,
            0xFF00_0000_0000_0000,
            0x0000_0000_0000_FF00,
            0x8000_0000_0000_0001,
            42,
            0x0123_4567_89AB_CDEF,
        ];
        let mut items: Vec<(u64, usize)> = (0..16)
            .flat_map(|r| patterns.iter().map(move |&p| p.rotate_left(r)))
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        assert!(items.len() >= RADIX_MIN);
        let mut expected = items.clone();
        expected.sort_by_key(|&(p, _)| p);
        radix_sort_by_prefix(&mut items);
        assert_eq!(items, expected);
    }

    #[test]
    fn prefix_sort_skips_presorted_input_without_comparisons() {
        let ks = DefaultKeySemantics;
        // Strictly increasing prefixes: the presorted fast path must
        // detect it and spend zero comparator calls.
        let keys: Vec<Vec<u8>> = (0u32..200).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut keyed: Vec<(u64, usize)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (ks.sort_prefix(k), i))
            .collect();
        let stats = prefix_sort_with(&mut keyed, &ks, |i| keys[i].as_slice());
        assert_eq!(stats.compare_calls, 0);
        assert_eq!(stats.tie_records, 0);
        let order: Vec<usize> = keyed.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, (0..200).collect::<Vec<_>>());
        // Non-decreasing with a tie must NOT take the shortcut: the tie
        // run still needs its comparator fallback to prove order.
        let tied: Vec<&[u8]> = vec![b"aaaaaaaa-b", b"aaaaaaaa-a"];
        let mut keyed: Vec<(u64, usize)> = tied
            .iter()
            .enumerate()
            .map(|(i, k)| (ks.sort_prefix(k), i))
            .collect();
        let stats = prefix_sort_with(&mut keyed, &ks, |i| tied[i]);
        assert!(stats.compare_calls > 0, "ties disqualify the shortcut");
        let order: Vec<usize> = keyed.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, vec![1, 0]);
    }

    fn seal_run(pairs: &[KvPair]) -> Vec<u8> {
        use crate::ifile::IFileWriter;
        let mut w = IFileWriter::new(Framing::IFile, Arc::new(scihadoop_compress::IdentityCodec));
        for p in pairs {
            w.append_pair(p);
        }
        w.close().data
    }

    fn stream_merge(runs: &[Vec<KvPair>], ks: &dyn KeySemantics) -> Vec<KvPair> {
        let sealed: Vec<Vec<u8>> = runs.iter().map(|r| seal_run(r)).collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &scihadoop_compress::IdentityCodec).unwrap())
            .collect();
        let mut stream = MergeStream::new(&segments, ks).unwrap();
        let mut out = Vec::new();
        while let Some((k, v)) = stream.next().unwrap() {
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        out
    }

    fn heap_stream_merge(runs: &[Vec<KvPair>], ks: &dyn KeySemantics) -> Vec<KvPair> {
        let sealed: Vec<Vec<u8>> = runs.iter().map(|r| seal_run(r)).collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &scihadoop_compress::IdentityCodec).unwrap())
            .collect();
        let mut stream = HeapMergeStream::new(&segments, ks).unwrap();
        let mut out = Vec::new();
        while let Some((k, v)) = stream.next().unwrap() {
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        out
    }

    #[test]
    fn merge_stream_agrees_with_materializing_merge() {
        let runs = vec![
            vec![pair("a", "1"), pair("c", "3"), pair("e", "5")],
            vec![pair("b", "2"), pair("d", "4")],
            vec![],
            vec![pair("a", "6"), pair("z", "7")],
        ];
        let streamed = stream_merge(&runs, &DefaultKeySemantics);
        let heap_streamed = heap_stream_merge(&runs, &DefaultKeySemantics);
        let materialized = merge_sorted_runs(runs, &DefaultKeySemantics);
        assert_eq!(streamed, materialized);
        assert_eq!(heap_streamed, materialized);
    }

    #[test]
    fn merge_stream_breaks_ties_by_run_order() {
        // Duplicated keys across runs must pop in run order, exactly as
        // the BinaryHeap merge's source tie-break does.
        let runs = vec![
            vec![pair("x", "run0-a"), pair("x", "run0-b")],
            vec![pair("x", "run1")],
            vec![pair("x", "run2")],
        ];
        let streamed = stream_merge(&runs, &DefaultKeySemantics);
        let materialized = merge_sorted_runs(runs, &DefaultKeySemantics);
        assert_eq!(streamed, materialized);
        let values: Vec<&[u8]> = streamed.iter().map(|p| p.value.as_slice()).collect();
        assert_eq!(
            values,
            vec![b"run0-a".as_slice(), b"run0-b", b"run1", b"run2",]
        );
    }

    #[test]
    fn merge_stream_many_random_runs() {
        let mut runs = Vec::new();
        for r in 0..9 {
            let mut run: Vec<KvPair> = (0..60)
                .map(|i| {
                    pair(
                        &format!("{:04}", (i * 17 + r * 5) % 499),
                        &format!("{r}-{i}"),
                    )
                })
                .collect();
            run.sort();
            runs.push(run);
        }
        let streamed = stream_merge(&runs, &DefaultKeySemantics);
        let heap_streamed = heap_stream_merge(&runs, &DefaultKeySemantics);
        let materialized = merge_sorted_runs(runs, &DefaultKeySemantics);
        assert_eq!(streamed.len(), 540);
        assert_eq!(streamed, materialized);
        assert_eq!(heap_streamed, materialized);
    }

    #[test]
    fn merge_stream_uneven_fan_in_and_exhaustion_order() {
        // Non-power-of-two fan-in with runs exhausting at different
        // times exercises the loser tree's replay on dead runs.
        let runs = vec![
            vec![pair("a", "0")],
            (0..40).map(|i| pair(&format!("k{i:02}"), "1")).collect(),
            vec![pair("z", "2")],
            (0..7).map(|i| pair(&format!("k{i:02}x"), "3")).collect(),
            vec![],
        ];
        let streamed = stream_merge(&runs, &DefaultKeySemantics);
        let materialized = merge_sorted_runs(runs, &DefaultKeySemantics);
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn merge_stream_falls_back_to_comparator_only_on_prefix_ties() {
        // Short distinct keys: prefixes decide everything, so the
        // comparator must never run. Long shared-prefix keys: it must.
        let ks = DefaultKeySemantics;
        let distinct = [
            vec![pair("a", "1"), pair("c", "2")],
            vec![pair("b", "3"), pair("d", "4")],
        ];
        let sealed: Vec<Vec<u8>> = distinct.iter().map(|r| seal_run(r)).collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &scihadoop_compress::IdentityCodec).unwrap())
            .collect();
        let mut stream = MergeStream::new(&segments, &ks).unwrap();
        while stream.next().unwrap().is_some() {}
        assert_eq!(stream.compare_calls(), 0, "distinct prefixes: no fallback");

        let tied = [vec![pair("aaaaaaaa-x", "1")], vec![pair("aaaaaaaa-y", "2")]];
        let sealed: Vec<Vec<u8>> = tied.iter().map(|r| seal_run(r)).collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &scihadoop_compress::IdentityCodec).unwrap())
            .collect();
        let mut stream = MergeStream::new(&segments, &ks).unwrap();
        while stream.next().unwrap().is_some() {}
        assert!(
            stream.compare_calls() > 0,
            "prefix tie needs the comparator"
        );
    }

    fn seal_run_v3(pairs: &[KvPair], budget: usize) -> Vec<u8> {
        use crate::ifile::IFileWriter;
        let mut w = IFileWriter::v3_with_budget(
            Framing::IFile,
            Arc::new(scihadoop_compress::IdentityCodec),
            Arc::new(DefaultKeySemantics),
            budget,
        );
        for p in pairs {
            w.append_pair(p);
        }
        w.close().data
    }

    fn block_stream_merge(runs: &[Vec<KvPair>], budget: usize) -> (Vec<KvPair>, u64) {
        let sealed: Vec<Vec<u8>> = runs.iter().map(|r| seal_run_v3(r, budget)).collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &scihadoop_compress::IdentityCodec).unwrap())
            .collect();
        let mut stream = BlockMergeStream::new(&segments, &DefaultKeySemantics).unwrap();
        let mut out = Vec::new();
        while let Some((k, v)) = stream.next().unwrap() {
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        let copied = stream.blocks_copied();
        (out, copied)
    }

    #[test]
    fn block_merge_agrees_with_flat_merge() {
        // Interleaved runs (every block contended) across several block
        // budgets, including budgets that force one record per block.
        let mut runs = Vec::new();
        for r in 0..5 {
            let mut run: Vec<KvPair> = (0..80)
                .map(|i| {
                    pair(
                        &format!("key-{:04}", (i * 13 + r * 7) % 331),
                        &format!("{r}-{i}"),
                    )
                })
                .collect();
            run.sort();
            runs.push(run);
        }
        runs.push(Vec::new());
        let materialized = merge_sorted_runs(runs.clone(), &DefaultKeySemantics);
        for budget in [1, 64, 512, 1 << 20] {
            let (streamed, _) = block_stream_merge(&runs, budget);
            assert_eq!(streamed, materialized, "budget {budget}");
        }
    }

    #[test]
    fn block_merge_breaks_ties_by_run_order() {
        let runs = vec![
            vec![pair("x", "run0-a"), pair("x", "run0-b")],
            vec![pair("x", "run1")],
            vec![pair("x", "run2")],
        ];
        let materialized = merge_sorted_runs(runs.clone(), &DefaultKeySemantics);
        let (streamed, _) = block_stream_merge(&runs, 64);
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn block_merge_skips_blocks_on_disjoint_ranges() {
        // Runs with disjoint key ranges: after the first heads resolve,
        // whole blocks of the low run sit below every other head and
        // burst out without replays.
        let runs: Vec<Vec<KvPair>> = (0..4)
            .map(|r| {
                (0..200)
                    .map(|i| pair(&format!("{r}-{:05}", i), "v"))
                    .collect()
            })
            .collect();
        let materialized = merge_sorted_runs(runs.clone(), &DefaultKeySemantics);
        let (streamed, copied) = block_stream_merge(&runs, 256);
        assert_eq!(streamed, materialized);
        assert!(copied > 0, "disjoint ranges must hit the block-skip path");
    }

    #[test]
    fn block_merge_next_item_splices_still_encoded_blocks() {
        use crate::ifile::IFileWriter;
        // Disjoint ranges again, but consumed through next_item: blocks
        // splice still-encoded into a new v3 writer, and the re-read
        // output must byte-match the record-at-a-time merge.
        let runs: Vec<Vec<KvPair>> = (0..3)
            .map(|r| {
                (0..150)
                    .map(|i| pair(&format!("{r}-{:05}", i), &format!("{r}.{i}")))
                    .collect()
            })
            .collect();
        let sealed: Vec<Vec<u8>> = runs.iter().map(|r| seal_run_v3(r, 256)).collect();
        let segments: Vec<RawSegment> = sealed
            .iter()
            .map(|s| RawSegment::open(s, &scihadoop_compress::IdentityCodec).unwrap())
            .collect();
        let mut stream = BlockMergeStream::new(&segments, &DefaultKeySemantics).unwrap();
        let mut w = IFileWriter::v3_with_budget(
            Framing::IFile,
            Arc::new(scihadoop_compress::IdentityCodec),
            Arc::new(DefaultKeySemantics),
            256,
        );
        let mut spliced = 0u64;
        loop {
            match stream.next_item().unwrap() {
                None => break,
                Some(MergeItem::Record(k, v)) => w.append(k, v),
                Some(MergeItem::Block(blk)) => {
                    spliced += 1;
                    w.append_encoded_block(&blk).unwrap();
                }
            }
        }
        assert!(spliced > 0, "disjoint ranges must splice whole blocks");
        let merged = w.close();
        let raw = RawSegment::open(&merged.data, &scihadoop_compress::IdentityCodec).unwrap();
        let mut out = Vec::new();
        raw.for_each_record(|k, v| out.push(KvPair::new(k.to_vec(), v.to_vec())))
            .unwrap();
        assert_eq!(out, merge_sorted_runs(runs, &DefaultKeySemantics));
    }

    #[test]
    fn flat_merges_reject_block_segments() {
        let sealed = seal_run_v3(&[pair("a", "1")], 64);
        let segments = vec![RawSegment::open(&sealed, &scihadoop_compress::IdentityCodec).unwrap()];
        assert!(MergeStream::new(&segments, &DefaultKeySemantics).is_err());
        assert!(HeapMergeStream::new(&segments, &DefaultKeySemantics).is_err());
    }

    #[test]
    fn block_merge_accepts_flat_segments_too() {
        // Mixed fan-in: a reducer may see v3 spills merged with flat ones
        // mid-migration; BlockMergeStream treats flat runs as ordinary
        // record cursors.
        let v3_run = vec![pair("a", "1"), pair("c", "3")];
        let flat_run = vec![pair("b", "2"), pair("d", "4")];
        let sealed_v3 = seal_run_v3(&v3_run, 64);
        let sealed_flat = seal_run(&flat_run);
        let segments = vec![
            RawSegment::open(&sealed_v3, &scihadoop_compress::IdentityCodec).unwrap(),
            RawSegment::open(&sealed_flat, &scihadoop_compress::IdentityCodec).unwrap(),
        ];
        let mut stream = BlockMergeStream::new(&segments, &DefaultKeySemantics).unwrap();
        let mut out = Vec::new();
        while let Some((k, v)) = stream.next().unwrap() {
            out.push(KvPair::new(k.to_vec(), v.to_vec()));
        }
        let expected = merge_sorted_runs(vec![v3_run, flat_run], &DefaultKeySemantics);
        assert_eq!(out, expected);
    }

    #[test]
    fn grouping_walks_equal_keys() {
        let sorted = vec![
            pair("a", "1"),
            pair("a", "2"),
            pair("b", "3"),
            pair("c", "4"),
            pair("c", "5"),
        ];
        let mut groups = Vec::new();
        for_each_group(&sorted, &DefaultKeySemantics, |k, vs| {
            groups.push((k.to_vec(), vs.len()));
        });
        assert_eq!(
            groups,
            vec![(b"a".to_vec(), 2), (b"b".to_vec(), 1), (b"c".to_vec(), 2)]
        );
    }
}

//! Records, input splits, and the user-function traits.

/// One key/value pair, both raw byte strings (Hadoop serializes keys the
/// moment they are emitted — §II-B assumption *b* — and this engine keeps
/// that behaviour so the paper's byte accounting is honest).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KvPair {
    /// Serialized key.
    pub key: Vec<u8>,
    /// Serialized value.
    pub value: Vec<u8>,
}

impl KvPair {
    /// Construct a pair.
    pub fn new(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        KvPair {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Serialized payload size (key + value, no framing).
    pub fn payload_len(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

/// One mapper's input: a batch of records (the engine's analogue of an
/// HDFS block + `RecordReader`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputSplit {
    /// The records of this split.
    pub records: Vec<KvPair>,
}

impl InputSplit {
    /// A split over the given records.
    pub fn new(records: Vec<KvPair>) -> Self {
        InputSplit { records }
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.records.iter().map(|r| r.payload_len() as u64).sum()
    }
}

/// Emission sink handed to map/reduce functions.
pub trait Emit {
    /// Emit one key/value pair.
    fn emit(&mut self, key: &[u8], value: &[u8]);
}

impl<F: FnMut(&[u8], &[u8])> Emit for F {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        self(key, value)
    }
}

/// The user map function.
pub trait Mapper: Send + Sync {
    /// Called once per input record.
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn Emit);

    /// Called once per map task after the last record, so user-level
    /// buffering (e.g. the §IV aggregation library) can flush.
    fn finish(&self, _out: &mut dyn Emit) {}
}

/// The user reduce function. Also used for combiners.
pub trait Reducer: Send + Sync {
    /// Called once per key group with all values for that key.
    fn reduce(&self, key: &[u8], values: &[&[u8]], out: &mut dyn Emit);
}

/// Adapter: build a [`Mapper`] from a plain function.
pub struct FnMapper<F>(pub F);

impl<F> Mapper for FnMapper<F>
where
    F: Fn(&[u8], &[u8], &mut dyn Emit) + Send + Sync,
{
    fn map(&self, key: &[u8], value: &[u8], out: &mut dyn Emit) {
        (self.0)(key, value, out)
    }
}

/// Adapter: build a [`Reducer`] from a plain function.
pub struct FnReducer<F>(pub F);

impl<F> Reducer for FnReducer<F>
where
    F: Fn(&[u8], &[&[u8]], &mut dyn Emit) + Send + Sync,
{
    fn reduce(&self, key: &[u8], values: &[&[u8]], out: &mut dyn Emit) {
        (self.0)(key, values, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvpair_sizes() {
        let p = KvPair::new(b"key".to_vec(), b"value".to_vec());
        assert_eq!(p.payload_len(), 8);
        let split = InputSplit::new(vec![p.clone(), p]);
        assert_eq!(split.bytes(), 16);
    }

    #[test]
    fn fn_adapters_work() {
        let m = FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
            out.emit(v, k); // swap
        });
        let mut collected = Vec::new();
        m.map(b"a", b"b", &mut |k: &[u8], v: &[u8]| {
            collected.push(KvPair::new(k.to_vec(), v.to_vec()));
        });
        assert_eq!(collected, vec![KvPair::new(b"b".to_vec(), b"a".to_vec())]);

        let r = FnReducer(|key: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
            let total: usize = values.iter().map(|v| v.len()).sum();
            out.emit(key, &total.to_be_bytes());
        });
        let mut collected = Vec::new();
        r.reduce(b"k", &[b"aa", b"bbb"], &mut |k: &[u8], v: &[u8]| {
            collected.push(KvPair::new(k.to_vec(), v.to_vec()));
        });
        assert_eq!(collected[0].value, 5usize.to_be_bytes().to_vec());
    }

    #[test]
    fn mapper_finish_default_is_noop() {
        struct Nop;
        impl Mapper for Nop {
            fn map(&self, _: &[u8], _: &[u8], _: &mut dyn Emit) {}
        }
        let mut emitted = 0usize;
        Nop.finish(&mut |_: &[u8], _: &[u8]| emitted += 1);
        assert_eq!(emitted, 0);
    }
}

//! Engine error type.

use scihadoop_compress::CompressError;
use std::fmt;

/// Errors surfaced by the MapReduce engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// Intermediate data failed to decompress or parse.
    Intermediate(String),
    /// A codec reported corruption.
    Codec(CompressError),
    /// Invalid job configuration.
    Config(String),
    /// A task panicked.
    TaskFailed(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::Intermediate(msg) => write!(f, "intermediate data error: {msg}"),
            MrError::Codec(e) => write!(f, "codec error: {e}"),
            MrError::Config(msg) => write!(f, "bad job config: {msg}"),
            MrError::TaskFailed(msg) => write!(f, "task failed: {msg}"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<CompressError> for MrError {
    fn from(e: CompressError) -> Self {
        MrError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: MrError = CompressError::Truncated("x".into()).into();
        assert!(e.to_string().contains("codec error"));
        assert!(MrError::Config("zero reducers".into())
            .to_string()
            .contains("zero reducers"));
    }
}

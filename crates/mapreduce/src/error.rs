//! Engine error type.

use scihadoop_compress::CompressError;
use std::fmt;

/// Errors surfaced by the MapReduce engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// Intermediate data failed to decompress or parse.
    Intermediate(String),
    /// A segment's CRC-32 trailer did not match its contents.
    Checksum(String),
    /// A codec reported corruption.
    Codec(CompressError),
    /// Invalid job configuration.
    Config(String),
    /// A task panicked.
    TaskFailed(String),
    /// A distributed-runtime transport failure: a socket died, a frame
    /// was malformed, or a worker process disappeared mid-task.
    Net(String),
    /// Several tasks failed before the job could be aborted; every
    /// collected error is preserved.
    Tasks(Vec<MrError>),
}

impl MrError {
    /// Collapse the errors of a failed phase: one error returns as
    /// itself, several as [`MrError::Tasks`].
    pub fn from_task_errors(mut errors: Vec<MrError>) -> MrError {
        assert!(!errors.is_empty(), "no task errors to report");
        if errors.len() == 1 {
            errors.pop().expect("one error")
        } else {
            MrError::Tasks(errors)
        }
    }

    /// All task errors, whether one or many.
    pub fn task_errors(&self) -> &[MrError] {
        match self {
            MrError::Tasks(errs) => errs,
            other => std::slice::from_ref(other),
        }
    }

    /// Whether this error (or any task error inside it) is a detected
    /// data-integrity failure — the signal the runner counts as caught
    /// corruption rather than a logic bug. Both the segment's own
    /// CRC-32C trailer ([`MrError::Checksum`]) and a CRC mismatch
    /// reported from inside a codec frame (the block codec checks each
    /// block before handing it to the inner codec) qualify.
    pub fn is_checksum(&self) -> bool {
        self.task_errors().iter().any(|e| {
            matches!(
                e,
                MrError::Checksum(_) | MrError::Codec(CompressError::ChecksumMismatch { .. })
            )
        })
    }
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::Intermediate(msg) => write!(f, "intermediate data error: {msg}"),
            MrError::Checksum(msg) => write!(f, "segment checksum failure: {msg}"),
            MrError::Codec(e) => write!(f, "codec error: {e}"),
            MrError::Config(msg) => write!(f, "bad job config: {msg}"),
            MrError::TaskFailed(msg) => write!(f, "task failed: {msg}"),
            MrError::Net(msg) => write!(f, "network error: {msg}"),
            MrError::Tasks(errs) => {
                write!(f, "{} tasks failed: ", errs.len())?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for MrError {}

impl From<CompressError> for MrError {
    fn from(e: CompressError) -> Self {
        MrError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: MrError = CompressError::Truncated("x".into()).into();
        assert!(e.to_string().contains("codec error"));
        assert!(MrError::Config("zero reducers".into())
            .to_string()
            .contains("zero reducers"));
    }

    #[test]
    fn task_errors_collapse_and_expand() {
        let one = MrError::from_task_errors(vec![MrError::Config("a".into())]);
        assert_eq!(one, MrError::Config("a".into()));
        assert_eq!(one.task_errors().len(), 1);

        let many = MrError::from_task_errors(vec![
            MrError::Config("a".into()),
            MrError::TaskFailed("b".into()),
        ]);
        assert!(matches!(&many, MrError::Tasks(errs) if errs.len() == 2));
        assert_eq!(many.task_errors().len(), 2);
        let msg = many.to_string();
        assert!(msg.contains("2 tasks failed"), "{msg}");
        assert!(msg.contains('a') && msg.contains('b'), "{msg}");
    }

    #[test]
    fn checksum_errors_are_detected_even_inside_task_lists() {
        let direct = MrError::Checksum("crc mismatch".into());
        assert!(direct.is_checksum());
        assert!(direct.to_string().contains("checksum"));
        let nested = MrError::Tasks(vec![
            MrError::TaskFailed("x".into()),
            MrError::Checksum("crc".into()),
        ]);
        assert!(nested.is_checksum());
        assert!(!MrError::Config("nope".into()).is_checksum());
        // A CRC mismatch caught inside a codec frame (block codec) is
        // detected corruption too; other codec errors are not.
        let block_crc: MrError = CompressError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        }
        .into();
        assert!(block_crc.is_checksum());
        let structural: MrError = CompressError::Corrupt("table".into()).into();
        assert!(!structural.is_checksum());
    }
}

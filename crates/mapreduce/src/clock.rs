//! Per-thread CPU clock for engine phase accounting.
//!
//! The phase counters (`MapFnNanos`, `SpillNanos`, `MergeNanos`,
//! `ReduceFnNanos` and the codec nanos) feed the cluster cost model,
//! which scales measured per-record cost up to a full-size cluster.
//! Wall-clock intervals are the wrong measurement for that whenever the
//! host runs more slot threads than cores: a task's interval then
//! includes time the OS spent running its neighbours, charging work to
//! the wrong phase at random and swamping the model with scheduler
//! noise. The thread CPU clock counts only cycles the calling thread
//! actually burned, so phase costs stay attributable regardless of how
//! oversubscribed the local machine is.
//!
//! On Linux this reads `CLOCK_THREAD_CPUTIME_ID` through a raw
//! `clock_gettime` syscall (no libc dependency); elsewhere it falls back
//! to a process-wide monotonic clock, i.e. the old wall-clock behaviour.
//!
//! # Fallback semantics
//!
//! The fallback fires in two cases: (a) the build targets something
//! other than Linux x86_64/aarch64, so the syscall path is compiled out
//! entirely; (b) the syscall path is compiled in but `clock_gettime`
//! returns nonzero at runtime (e.g. an emulator or seccomp filter that
//! rejects it). In either case every "CPU nanos" figure silently
//! becomes *wall* nanos from a process-wide monotonic epoch: readings
//! still only make sense as same-thread differences, sleeping is no
//! longer free, and a busy sibling thread inflates measurements.
//! Downstream consumers can detect this via [`clock_kind`] — the
//! tracing recorder emits a one-time warning into the trace when it
//! sees [`ClockKind::Wall`] so exported profiles are not mistaken for
//! CPU-attributed ones.

/// Nanoseconds of CPU time consumed by the calling thread so far.
///
/// Only differences between readings on the *same thread* are
/// meaningful.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn thread_cpu_nanos() -> u64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    const CLOCK_THREAD_CPUTIME_ID: usize = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 228isize => ret, // __NR_clock_gettime
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") &mut ts as *mut Timespec,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") 113isize, // __NR_clock_gettime
            inlateout("x0") CLOCK_THREAD_CPUTIME_ID => ret,
            in("x1") &mut ts as *mut Timespec,
            options(nostack),
        );
    }
    if ret == 0 {
        ts.sec as u64 * 1_000_000_000 + ts.nsec as u64
    } else {
        fallback_nanos()
    }
}

/// Fallback for platforms without the thread clock.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn thread_cpu_nanos() -> u64 {
    fallback_nanos()
}

fn fallback_nanos() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// Thread-CPU nanos elapsed since an earlier [`thread_cpu_nanos`]
/// reading on this thread.
pub fn since(t0: u64) -> u64 {
    thread_cpu_nanos().saturating_sub(t0)
}

/// What [`thread_cpu_nanos`] actually measures on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockKind {
    /// Real per-thread CPU time (`CLOCK_THREAD_CPUTIME_ID`).
    ThreadCpu,
    /// Wall-clock fallback: blocked time is charged, sibling threads
    /// interfere. Phase CPU figures are upper bounds only.
    Wall,
}

/// Probe (once) which clock [`thread_cpu_nanos`] is backed by at
/// runtime. On fallback builds this is statically [`ClockKind::Wall`];
/// on Linux it verifies the syscall actually succeeds, since a rejected
/// syscall degrades to the wall clock silently.
pub fn clock_kind() -> ClockKind {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        use std::sync::OnceLock;
        static KIND: OnceLock<ClockKind> = OnceLock::new();
        *KIND.get_or_init(|| {
            // The syscall path falls back on error, so distinguish the
            // two by behaviour: a successful thread-CPU reading while
            // this thread has burned almost no CPU sits far below the
            // process-wide fallback epoch after any real work has run.
            // Cheaper and more direct: re-issue the probe the same way
            // thread_cpu_nanos does and trust its error handling by
            // checking that sleeping does not advance the reading.
            let t0 = thread_cpu_nanos();
            std::thread::sleep(std::time::Duration::from_millis(2));
            let advanced = thread_cpu_nanos().saturating_sub(t0);
            if advanced < 1_000_000 {
                ClockKind::ThreadCpu
            } else {
                ClockKind::Wall
            }
        })
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        ClockKind::Wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_advances_under_load() {
        let t0 = thread_cpu_nanos();
        // Burn some CPU so the reading must move.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let t1 = thread_cpu_nanos();
        assert!(t1 > t0, "clock did not advance: {t0} -> {t1}");
    }

    #[test]
    fn sleeping_burns_no_cpu_time() {
        // The defining property vs. wall clocks: blocked time is free.
        let t0 = thread_cpu_nanos();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let spent = since(t0);
        assert!(spent < 10_000_000, "sleep charged {spent} ns of CPU time");
    }

    #[test]
    fn clock_kind_is_stable_and_truthful() {
        let kind = clock_kind();
        assert_eq!(kind, clock_kind(), "probe result must be cached");
        if kind == ClockKind::ThreadCpu {
            // If we claim a CPU clock, sleeping must be (nearly) free.
            let t0 = thread_cpu_nanos();
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(since(t0) < 10_000_000);
        }
    }

    #[test]
    fn threads_have_independent_clocks() {
        // A busy sibling thread must not advance this thread's clock.
        let t0 = thread_cpu_nanos();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut acc = 1u64;
                for i in 0..2_000_000u64 {
                    acc = acc.wrapping_mul(0x9E3779B97F4A7C15) ^ i;
                }
                std::hint::black_box(acc);
            });
        });
        // Generous bound: joining costs a little CPU here, but far less
        // than the sibling burned.
        assert!(since(t0) < 50_000_000);
    }
}

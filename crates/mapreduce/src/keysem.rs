//! Key semantics — the engine hook behind the paper's §IV-B change.
//!
//! Stock Hadoop assumes keys are atomic and independent (§II-B). The
//! paper's "one set of changes inside Hadoop ... allows aggregate keys to
//! be split during the routing and sorting phases". This trait is that
//! change, made pluggable: the engine calls [`KeySemantics::route`] when
//! partitioning map output and [`KeySemantics::sort_split`] before
//! grouping at the reducer. The default implementation reproduces stock
//! Hadoop (hash partitioning, no splitting); `scihadoop-core` provides
//! the aggregate-key implementation.

use crate::record::KvPair;
use std::cmp::Ordering;

/// Sink receiving routed `(partition, key, value)` pieces from
/// [`KeySemantics::route_slices`].
pub type RouteSink<'a> = dyn FnMut(usize, &[u8], &[u8]) + 'a;

/// Pluggable key behaviour for routing, sorting, splitting and grouping.
pub trait KeySemantics: Send + Sync {
    /// Sort order of serialized keys (Hadoop: bytewise).
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    /// Order-preserving fixed-width *sort prefix* of a key — the engine's
    /// normalized-key fast path (database sort kernels' "normalized keys",
    /// Hadoop's `RawComparator` taken one step further). Contract:
    ///
    /// > `sort_prefix(a) < sort_prefix(b)` implies
    /// > `compare(a, b) == Ordering::Less`.
    ///
    /// Equal prefixes promise nothing; both sort stages fall back to
    /// [`KeySemantics::compare`] on prefix ties, so a low-entropy prefix
    /// costs speed, never correctness. Returning a constant (e.g. `0`)
    /// is always valid.
    ///
    /// The v3 block-skipping merge additionally relies on the *other*
    /// direction of the same contract: along a sorted run the prefixes
    /// are non-decreasing (a strictly smaller prefix after a larger one
    /// would contradict the implication above), and a run whose next
    /// fence prefix is strictly below every rival head's prefix is
    /// provably uncontended. Only the implication is required — no new
    /// obligation is placed on implementors.
    ///
    /// The default takes the first 8 key bytes,
    /// big-endian, zero-extended — order-preserving for the default
    /// bytewise `compare` (zero-extension only ever coarsens bytewise
    /// order into ties). Implementations that override `compare` with a
    /// non-bytewise order MUST also override this method.
    fn sort_prefix(&self, key: &[u8]) -> u64 {
        bytewise_sort_prefix(key)
    }

    /// Which reducer a key routes to (Hadoop's `Partitioner`).
    fn partition(&self, key: &[u8], parts: usize) -> usize;

    /// Route a pair, possibly splitting it across reducers (§IV-B case
    /// 1). The default routes whole pairs, like stock Hadoop.
    fn route(&self, pair: KvPair, parts: usize) -> Vec<(usize, KvPair)> {
        let p = self.partition(&pair.key, parts);
        vec![(p, pair)]
    }

    /// Slice-based routing for the arena spill path: emit each routed
    /// `(partition, key, value)` piece without materializing owned pairs.
    /// The default delegates to [`KeySemantics::route`], so existing
    /// implementations that only override `route` stay correct;
    /// implementations on the hot path should override this to avoid the
    /// per-record allocations.
    fn route_slices(&self, key: &[u8], value: &[u8], parts: usize, emit: &mut RouteSink<'_>) {
        for (p, piece) in self.route(KvPair::new(key.to_vec(), value.to_vec()), parts) {
            emit(p, &piece.key, &piece.value);
        }
    }

    /// Rewrite a reducer's sorted run before grouping, e.g. splitting
    /// overlapping aggregate keys (§IV-B case 2). Must return records
    /// whose keys are equal or never group together; the engine re-sorts
    /// afterwards. The default is the identity (stock Hadoop).
    fn sort_split(&self, records: Vec<KvPair>) -> Vec<KvPair> {
        records
    }

    /// Whether [`KeySemantics::sort_split`] can ever rewrite records.
    /// `false` lets the reducer stream records from the merge straight
    /// into grouping with no buffering at all. The conservative default
    /// is `true`.
    fn sort_splits(&self) -> bool {
        true
    }

    /// Whether `sort_split` could rewrite either of two records because
    /// the other is present in the same batch. The reducer uses this to
    /// window the merged stream: a run of records is handed to
    /// `sort_split` as soon as the next record interacts with none of
    /// them. Implementations must satisfy two contracts over a sorted
    /// run: (closure) if `b` sorts at-or-after `a` and `!sort_interacts(a,
    /// b)`, then no `c` sorting at-or-after `b` interacts with `a`; and
    /// (grouping) `group_eq(a, b)` implies `sort_interacts(a, b)`. The
    /// conservative default — everything interacts — degrades to one
    /// whole-run batch, the pre-streaming behaviour.
    fn sort_interacts(&self, _a: &[u8], _b: &[u8]) -> bool {
        true
    }

    /// Whether two keys belong to the same reduce group (Hadoop's
    /// grouping comparator).
    fn group_eq(&self, a: &[u8], b: &[u8]) -> bool {
        a == b
    }
}

/// Stock-Hadoop behaviour: FNV-1a hash partitioning, bytewise sort,
/// atomic keys.
#[derive(Debug, Clone, Default)]
pub struct DefaultKeySemantics;

impl KeySemantics for DefaultKeySemantics {
    fn partition(&self, key: &[u8], parts: usize) -> usize {
        (fnv1a(key) % parts as u64) as usize
    }

    fn route_slices(&self, key: &[u8], value: &[u8], parts: usize, emit: &mut RouteSink<'_>) {
        emit(self.partition(key, parts), key, value);
    }

    fn sort_splits(&self) -> bool {
        false
    }

    fn sort_interacts(&self, _a: &[u8], _b: &[u8]) -> bool {
        false
    }
}

/// The default [`KeySemantics::sort_prefix`]: first 8 key bytes,
/// big-endian, zero-extended. For any bytewise comparator this is
/// order-preserving — where the zero padding collides with real `0x00`
/// key bytes the prefixes tie, and ties always fall back to the full
/// comparator.
#[inline]
pub fn bytewise_sort_prefix(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// FNV-1a, the engine's stand-in for `key.hashCode() % numReducers`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_partition_is_stable_and_in_range() {
        let ks = DefaultKeySemantics;
        for key in [b"a".as_slice(), b"windspeed1", b"", &[0xFF; 40]] {
            let p = ks.partition(key, 5);
            assert!(p < 5);
            assert_eq!(p, ks.partition(key, 5), "deterministic");
        }
    }

    #[test]
    fn default_route_is_whole_pair() {
        let ks = DefaultKeySemantics;
        let pair = KvPair::new(b"k".to_vec(), b"v".to_vec());
        let routed = ks.route(pair.clone(), 3);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].1, pair);
        assert_eq!(routed[0].0, ks.partition(b"k", 3));
    }

    #[test]
    fn default_compare_is_bytewise() {
        let ks = DefaultKeySemantics;
        assert_eq!(ks.compare(b"a", b"b"), Ordering::Less);
        assert_eq!(ks.compare(b"ab", b"a"), Ordering::Greater);
        assert!(ks.group_eq(b"x", b"x"));
        assert!(!ks.group_eq(b"x", b"y"));
    }

    #[test]
    fn sort_split_default_is_identity() {
        let ks = DefaultKeySemantics;
        let records = vec![KvPair::new(b"a".to_vec(), b"1".to_vec())];
        assert_eq!(ks.sort_split(records.clone()), records);
    }

    #[test]
    fn route_slices_default_delegates_to_route() {
        /// Splits every pair across two fixed partitions via `route` only.
        struct Splitter;
        impl KeySemantics for Splitter {
            fn partition(&self, _key: &[u8], _parts: usize) -> usize {
                0
            }
            fn route(&self, pair: KvPair, _parts: usize) -> Vec<(usize, KvPair)> {
                vec![(0, pair.clone()), (1, pair)]
            }
        }
        let mut emitted = Vec::new();
        Splitter.route_slices(b"k", b"v", 2, &mut |p, k, v| {
            emitted.push((p, k.to_vec(), v.to_vec()));
        });
        assert_eq!(
            emitted,
            vec![
                (0, b"k".to_vec(), b"v".to_vec()),
                (1, b"k".to_vec(), b"v".to_vec()),
            ]
        );
        // Unknown semantics keep the conservative streaming defaults.
        assert!(Splitter.sort_splits());
        assert!(Splitter.sort_interacts(b"a", b"b"));
    }

    #[test]
    fn default_route_slices_matches_route() {
        let ks = DefaultKeySemantics;
        let mut emitted = Vec::new();
        ks.route_slices(b"key", b"val", 7, &mut |p, k, v| {
            emitted.push((p, k.to_vec(), v.to_vec()));
        });
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].0, ks.partition(b"key", 7));
        assert!(!ks.sort_splits(), "atomic keys never split at sort time");
        assert!(!ks.sort_interacts(b"a", b"a"));
    }

    #[test]
    fn default_sort_prefix_is_order_preserving_for_bytewise_keys() {
        let ks = DefaultKeySemantics;
        let keys: &[&[u8]] = &[
            b"",
            b"\x00",
            b"\x00\x00",
            b"a",
            b"a\x00",
            b"a\x00\x01",
            b"a\x01",
            b"ab",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefgi",
            b"b",
            &[0xFF; 12],
        ];
        for a in keys {
            for b in keys {
                if ks.sort_prefix(a) < ks.sort_prefix(b) {
                    assert_eq!(
                        ks.compare(a, b),
                        Ordering::Less,
                        "prefix contract violated for {a:?} vs {b:?}"
                    );
                }
            }
        }
        // Beyond-8-byte differences tie (and must, per the contract).
        assert_eq!(ks.sort_prefix(b"abcdefghX"), ks.sort_prefix(b"abcdefghY"));
        assert_eq!(bytewise_sort_prefix(b"abcdefgh"), 0x6162636465666768);
        // Prefixes are non-decreasing along any sorted sequence — the
        // monotonicity the v3 fence-index skip rule leans on.
        let mut sorted: Vec<&[u8]> = keys.to_vec();
        sorted.sort_by(|a, b| ks.compare(a, b));
        for w in sorted.windows(2) {
            assert!(
                ks.sort_prefix(w[0]) <= ks.sort_prefix(w[1]),
                "prefix regressed along a sorted run: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(bytewise_sort_prefix(b"a"), 0x61 << 56);
        assert_eq!(bytewise_sort_prefix(b""), 0);
    }

    #[test]
    fn fnv_distributes() {
        // Coarse check: 1000 numeric keys spread over 10 buckets with no
        // bucket starved.
        let mut buckets = [0usize; 10];
        for i in 0..1000u32 {
            let ks = DefaultKeySemantics;
            buckets[ks.partition(&i.to_be_bytes(), 10)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 50), "skewed: {buckets:?}");
    }
}

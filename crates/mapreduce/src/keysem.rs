//! Key semantics — the engine hook behind the paper's §IV-B change.
//!
//! Stock Hadoop assumes keys are atomic and independent (§II-B). The
//! paper's "one set of changes inside Hadoop ... allows aggregate keys to
//! be split during the routing and sorting phases". This trait is that
//! change, made pluggable: the engine calls [`KeySemantics::route`] when
//! partitioning map output and [`KeySemantics::sort_split`] before
//! grouping at the reducer. The default implementation reproduces stock
//! Hadoop (hash partitioning, no splitting); `scihadoop-core` provides
//! the aggregate-key implementation.

use crate::record::KvPair;
use std::cmp::Ordering;

/// Pluggable key behaviour for routing, sorting, splitting and grouping.
pub trait KeySemantics: Send + Sync {
    /// Sort order of serialized keys (Hadoop: bytewise).
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    /// Which reducer a key routes to (Hadoop's `Partitioner`).
    fn partition(&self, key: &[u8], parts: usize) -> usize;

    /// Route a pair, possibly splitting it across reducers (§IV-B case
    /// 1). The default routes whole pairs, like stock Hadoop.
    fn route(&self, pair: KvPair, parts: usize) -> Vec<(usize, KvPair)> {
        let p = self.partition(&pair.key, parts);
        vec![(p, pair)]
    }

    /// Rewrite a reducer's sorted run before grouping, e.g. splitting
    /// overlapping aggregate keys (§IV-B case 2). Must return records
    /// whose keys are equal or never group together; the engine re-sorts
    /// afterwards. The default is the identity (stock Hadoop).
    fn sort_split(&self, records: Vec<KvPair>) -> Vec<KvPair> {
        records
    }

    /// Whether two keys belong to the same reduce group (Hadoop's
    /// grouping comparator).
    fn group_eq(&self, a: &[u8], b: &[u8]) -> bool {
        a == b
    }
}

/// Stock-Hadoop behaviour: FNV-1a hash partitioning, bytewise sort,
/// atomic keys.
#[derive(Debug, Clone, Default)]
pub struct DefaultKeySemantics;

impl KeySemantics for DefaultKeySemantics {
    fn partition(&self, key: &[u8], parts: usize) -> usize {
        (fnv1a(key) % parts as u64) as usize
    }
}

/// FNV-1a, the engine's stand-in for `key.hashCode() % numReducers`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_partition_is_stable_and_in_range() {
        let ks = DefaultKeySemantics;
        for key in [b"a".as_slice(), b"windspeed1", b"", &[0xFF; 40]] {
            let p = ks.partition(key, 5);
            assert!(p < 5);
            assert_eq!(p, ks.partition(key, 5), "deterministic");
        }
    }

    #[test]
    fn default_route_is_whole_pair() {
        let ks = DefaultKeySemantics;
        let pair = KvPair::new(b"k".to_vec(), b"v".to_vec());
        let routed = ks.route(pair.clone(), 3);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].1, pair);
        assert_eq!(routed[0].0, ks.partition(b"k", 3));
    }

    #[test]
    fn default_compare_is_bytewise() {
        let ks = DefaultKeySemantics;
        assert_eq!(ks.compare(b"a", b"b"), Ordering::Less);
        assert_eq!(ks.compare(b"ab", b"a"), Ordering::Greater);
        assert!(ks.group_eq(b"x", b"x"));
        assert!(!ks.group_eq(b"x", b"y"));
    }

    #[test]
    fn sort_split_default_is_identity() {
        let ks = DefaultKeySemantics;
        let records = vec![KvPair::new(b"a".to_vec(), b"1".to_vec())];
        assert_eq!(ks.sort_split(records.clone()), records);
    }

    #[test]
    fn fnv_distributes() {
        // Coarse check: 1000 numeric keys spread over 10 buckets with no
        // bucket starved.
        let mut buckets = [0usize; 10];
        for i in 0..1000u32 {
            let ks = DefaultKeySemantics;
            buckets[ks.partition(&i.to_be_bytes(), 10)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 50), "skewed: {buckets:?}");
    }
}

//! Job configuration and results.

use crate::counters::CounterSnapshot;
use crate::error::MrError;
use crate::ifile::{Framing, IFileVersion};
use crate::keysem::{DefaultKeySemantics, KeySemantics};
use crate::record::{InputSplit, KvPair, Mapper, Reducer};
use crate::runner;
use crate::stats::JobStats;
use scihadoop_compress::{Codec, IdentityCodec};
use std::sync::Arc;

/// Everything that configures a job besides the user functions.
#[derive(Clone)]
pub struct JobConfig {
    /// Number of reduce tasks (the paper's cluster runs 5).
    pub num_reducers: usize,
    /// Concurrent map tasks (the paper's cluster has 10 map slots).
    pub map_slots: usize,
    /// Concurrent reduce tasks.
    pub reduce_slots: usize,
    /// Codec applied to every materialized intermediate segment.
    pub codec: Arc<dyn Codec>,
    /// Key behaviour (routing, sorting, splitting, grouping).
    pub key_semantics: Arc<dyn KeySemantics>,
    /// Optional combiner, run on each sorted spill (Fig. 1 step 3).
    pub combiner: Option<Arc<dyn Reducer>>,
    /// Map-side sort-buffer spill threshold in bytes.
    pub spill_buffer_bytes: usize,
    /// Intermediate record framing.
    pub framing: Framing,
    /// On-disk IFile format for intermediate segments (v1 plain,
    /// v2 CRC-trailed flat, v3 front-coded sorted blocks).
    pub ifile_version: IFileVersion,
    /// Optional tracing/metrics recorder; worker threads attach to it
    /// and record spans + histograms (see [`crate::obs`]).
    pub recorder: Option<crate::obs::Recorder>,
    /// Retry budget per task: a failed attempt is re-queued until it has
    /// failed `task_retries + 1` times. Zero (default) preserves the old
    /// fail-fast behavior.
    pub task_retries: u32,
    /// Base backoff between a task failure and its re-queue; attempt `n`
    /// waits `retry_backoff * 2^(n-1)`, deterministic in the attempt
    /// number.
    pub retry_backoff: std::time::Duration,
    /// Optional fault-injection plan (testing/experiments only).
    pub faults: Option<Arc<crate::fault::FaultPlan>>,
    /// Optional run ledger: the runner appends one
    /// [`LedgerRecord`](crate::obs::LedgerRecord) per completed job.
    pub ledger: Option<crate::obs::LedgerSink>,
    /// Label stamped into runner-appended ledger records.
    pub ledger_label: String,
    /// Block size in KiB recorded in ledger records for block-framed
    /// codecs; 0 when not applicable. Purely descriptive — the `Codec`
    /// trait does not expose its framing, so the caller that built the
    /// codec supplies this.
    pub ledger_block_kib: u64,
}

impl std::fmt::Debug for JobConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobConfig")
            .field("num_reducers", &self.num_reducers)
            .field("map_slots", &self.map_slots)
            .field("reduce_slots", &self.reduce_slots)
            .field("codec", &self.codec.name())
            .field("combiner", &self.combiner.is_some())
            .field("spill_buffer_bytes", &self.spill_buffer_bytes)
            .field("framing", &self.framing)
            .field("ifile_version", &self.ifile_version)
            .field("recorder", &self.recorder.is_some())
            .field("task_retries", &self.task_retries)
            .field("retry_backoff", &self.retry_backoff)
            .field("faults", &self.faults.as_ref().map(|p| p.config()))
            .field("ledger", &self.ledger.is_some())
            .field("ledger_label", &self.ledger_label)
            .field("ledger_block_kib", &self.ledger_block_kib)
            .finish()
    }
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            num_reducers: 1,
            map_slots: 2,
            reduce_slots: 2,
            codec: Arc::new(IdentityCodec),
            key_semantics: Arc::new(DefaultKeySemantics),
            combiner: None,
            spill_buffer_bytes: 16 << 20,
            framing: Framing::SequenceFile,
            ifile_version: IFileVersion::default(),
            recorder: None,
            task_retries: 0,
            retry_backoff: std::time::Duration::from_micros(100),
            faults: None,
            ledger: None,
            ledger_label: "job".to_string(),
            ledger_block_kib: 0,
        }
    }
}

impl JobConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), MrError> {
        if self.num_reducers == 0 {
            return Err(MrError::Config("num_reducers must be > 0".into()));
        }
        if self.map_slots == 0 || self.reduce_slots == 0 {
            return Err(MrError::Config("slots must be > 0".into()));
        }
        if self.spill_buffer_bytes == 0 {
            return Err(MrError::Config("spill buffer must be > 0".into()));
        }
        Ok(())
    }

    /// Builder-style setter for the reducer count.
    pub fn with_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n;
        self
    }

    /// Builder-style setter for the codec.
    pub fn with_codec(mut self, codec: Arc<dyn Codec>) -> Self {
        self.codec = codec;
        self
    }

    /// Builder-style setter for key semantics.
    pub fn with_key_semantics(mut self, ks: Arc<dyn KeySemantics>) -> Self {
        self.key_semantics = ks;
        self
    }

    /// Builder-style setter for the combiner.
    pub fn with_combiner(mut self, c: Arc<dyn Reducer>) -> Self {
        self.combiner = Some(c);
        self
    }

    /// Builder-style setter for framing.
    pub fn with_framing(mut self, framing: Framing) -> Self {
        self.framing = framing;
        self
    }

    /// Builder-style setter for the intermediate segment format version.
    pub fn with_ifile_version(mut self, version: IFileVersion) -> Self {
        self.ifile_version = version;
        self
    }

    /// Builder-style setter for slots.
    pub fn with_slots(mut self, map_slots: usize, reduce_slots: usize) -> Self {
        self.map_slots = map_slots;
        self.reduce_slots = reduce_slots;
        self
    }

    /// Builder-style setter for the spill threshold.
    pub fn with_spill_buffer(mut self, bytes: usize) -> Self {
        self.spill_buffer_bytes = bytes;
        self
    }

    /// Builder-style setter for the tracing/metrics recorder.
    pub fn with_recorder(mut self, recorder: crate::obs::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builder-style setter for the per-task retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.task_retries = retries;
        self
    }

    /// Builder-style setter for the retry backoff base.
    pub fn with_retry_backoff(mut self, backoff: std::time::Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Builder-style setter for the fault-injection plan.
    pub fn with_faults(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Builder-style setter for the run ledger: the runner appends one
    /// record per completed job, labelled `label`.
    pub fn with_ledger(mut self, sink: crate::obs::LedgerSink, label: &str) -> Self {
        self.ledger = Some(sink);
        self.ledger_label = label.to_string();
        self
    }

    /// Builder-style setter for the descriptive codec block size (KiB)
    /// recorded in ledger records.
    pub fn with_ledger_block_kib(mut self, kib: u64) -> Self {
        self.ledger_block_kib = kib;
        self
    }
}

/// The result of a finished job.
pub struct JobResult {
    /// Final output, one vector per reducer, in that reducer's key order.
    pub outputs: Vec<Vec<KvPair>>,
    /// Counter values at completion.
    pub counters: CounterSnapshot,
    /// Per-phase wall-clock and byte accounting for the cluster model.
    pub stats: JobStats,
}

impl JobResult {
    /// All outputs flattened (order: reducer 0's keys, then reducer 1's…).
    pub fn all_outputs(&self) -> Vec<KvPair> {
        self.outputs.iter().flatten().cloned().collect()
    }
}

/// A configured job, ready to run.
pub struct Job {
    config: JobConfig,
}

impl Job {
    /// Create a job with the given configuration.
    pub fn new(config: JobConfig) -> Self {
        Job { config }
    }

    /// The configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Execute map → shuffle → reduce over the input splits.
    pub fn run(
        &self,
        splits: Vec<InputSplit>,
        mapper: Arc<dyn Mapper>,
        reducer: Arc<dyn Reducer>,
    ) -> Result<JobResult, MrError> {
        self.config.validate()?;
        runner::run_job(&self.config, splits, mapper, reducer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(JobConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(JobConfig::default().with_reducers(0).validate().is_err());
        assert!(JobConfig::default().with_slots(0, 1).validate().is_err());
        assert!(JobConfig::default().with_slots(1, 0).validate().is_err());
        assert!(JobConfig::default()
            .with_spill_buffer(0)
            .validate()
            .is_err());
    }

    #[test]
    fn builders_compose() {
        let cfg = JobConfig::default()
            .with_reducers(5)
            .with_slots(10, 5)
            .with_framing(Framing::IFile)
            .with_spill_buffer(1024);
        assert_eq!(cfg.num_reducers, 5);
        assert_eq!(cfg.map_slots, 10);
        assert_eq!(cfg.reduce_slots, 5);
        assert_eq!(cfg.framing, Framing::IFile);
        assert_eq!(cfg.spill_buffer_bytes, 1024);
    }
}

//! A from-scratch, multi-threaded MapReduce engine — the "rebuilt
//! intermediate-data pipeline" this reproduction substitutes for Hadoop.
//!
//! The engine reproduces the stages of the paper's Fig. 1 faithfully,
//! because the paper's results are entirely about what flows between
//! them:
//!
//! 1. mappers read input splits (each split runs on a *map slot*);
//! 2. map output is partitioned, sorted and optionally combined;
//! 3. sorted runs are materialized in an IFile-style record format
//!    through a pluggable [`Codec`] — **the byte counts here are the
//!    paper's "Map output materialized bytes"**;
//! 4. the shuffle hands each reducer its partition from every map;
//! 5. reducers merge-sort runs, apply key-semantics hooks (the paper's
//!    §IV-B key-splitting change lives behind [`KeySemantics`]), group,
//!    and reduce.
//!
//! Keys and values are raw byte strings, as in Hadoop; typed layers live
//! above (see `scihadoop-queries`).
//!
//! [`Codec`]: scihadoop_compress::Codec

pub mod arena;
pub mod clock;
pub mod counters;
pub mod dist;
pub mod error;
pub mod fault;
pub mod ifile;
pub mod job;
pub mod keysem;
pub mod obs;
pub mod record;
pub mod runner;
pub mod sort;
pub mod stats;

pub use arena::SpillArena;
pub use counters::{Counter, CounterSnapshot, Counters, ALL_COUNTERS, NUM_COUNTERS};
pub use dist::{
    run_distributed, run_distributed_with_threads, run_worker, DistConfig, Transport, WireCodec,
    WorkerEnv,
};
pub use error::MrError;
pub use fault::{Corruption, FaultConfig, FaultPlan};
pub use ifile::{
    BlockCursor, EncodedBlock, Framing, IFileReader, IFileVersion, IFileWriter, PrefixedCursor,
    RawSegment, RecordCursor, RecordSlices, DEFAULT_BLOCK_BUDGET,
};
pub use job::{Job, JobConfig, JobResult};
pub use keysem::{bytewise_sort_prefix, DefaultKeySemantics, KeySemantics, RouteSink};
pub use obs::{Phase, Recorder, Trace};
pub use record::{Emit, FnMapper, FnReducer, InputSplit, KvPair, Mapper, Reducer};
pub use sort::{
    for_each_group, merge_sorted_runs, sort_pairs, BlockMergeStream, HeapMergeStream, MergeItem,
    MergeStream, SortBuffer,
};
pub use stats::JobStats;

//! Spill-equivalence properties for the coordinator's shuffle store.
//!
//! The memory budget decides *where* a segment waits (resident or in a
//! spill file), never *what* is served: a store forced to spill every
//! byte (budget 0) must hand back segment streams byte-identical to an
//! unbounded store over the same publishes, with the semantic counters
//! (total bytes) agreeing and the placement counters (spilled bytes,
//! spill reads, high water) reflecting full spill. A second property
//! replays a mid-job map-task death: segments already spilled are
//! republished by the retried attempt, and both handles taken before
//! the death and fetches after it stay correct.

use proptest::prelude::*;
use scihadoop_mapreduce::dist::ShuffleStore;

const PARTITIONS: usize = 3;

/// Deterministic segment payload, distinct per (map, partition, seed).
fn segment(seed: u64, map: usize, partition: usize, len: usize) -> Vec<u8> {
    let mut state = seed ^ ((map as u64) << 32) ^ ((partition as u64) << 16) ^ len as u64;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        })
        .collect()
}

/// One map task's outputs: non-empty segments only, like the engine's
/// staged map outputs.
fn outputs(seed: u64, map: usize, lens: &[usize]) -> Vec<(usize, Vec<u8>)> {
    lens.iter()
        .enumerate()
        .filter(|(_, &len)| len > 0)
        .map(|(partition, &len)| (partition, segment(seed, map, partition, len)))
        .collect()
}

/// Fetch every segment of every partition in canonical order.
fn drain(store: &ShuffleStore, num_maps: usize) -> Vec<Vec<Vec<u8>>> {
    (0..PARTITIONS)
        .map(|partition| {
            let _fetch = store.fetch_guard(partition);
            (0..num_maps)
                .filter_map(|map| {
                    store
                        .segment_when_ready(partition, map)
                        .expect("store not aborted")
                        .map(|handle| handle.to_vec().expect("segment reads back"))
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zero_budget_store_serves_byte_identical_streams(
        // Per map task: a segment length per partition (0 = emitted
        // nothing for that partition).
        layout in proptest::collection::vec(
            proptest::collection::vec(0usize..700, PARTITIONS..PARTITIONS + 1),
            1..6,
        ),
        seed in any::<u64>(),
    ) {
        let num_maps = layout.len();
        let unbounded = ShuffleStore::new(PARTITIONS, num_maps, usize::MAX);
        let spilling = ShuffleStore::new(PARTITIONS, num_maps, 0);
        for (map, lens) in layout.iter().enumerate() {
            unbounded.publish(map, outputs(seed, map, lens)).unwrap();
            spilling.publish(map, outputs(seed, map, lens)).unwrap();
        }

        prop_assert_eq!(drain(&unbounded, num_maps), drain(&spilling, num_maps));

        let total: u64 = layout.iter().flatten().map(|&len| len as u64).sum();
        let segments: u64 = layout.iter().flatten().filter(|&&len| len > 0).count() as u64;
        prop_assert_eq!(unbounded.total_bytes(), total);
        prop_assert_eq!(spilling.total_bytes(), total);
        // Placement counters: everything spilled on one side, nothing
        // on the other; every fetch on the bounded side hit the disk.
        prop_assert_eq!(spilling.spilled_bytes(), total);
        prop_assert_eq!(spilling.mem_high_water(), 0);
        prop_assert_eq!(spilling.spill_reads(), segments);
        prop_assert_eq!(unbounded.spilled_bytes(), 0);
        prop_assert_eq!(unbounded.spill_reads(), 0);
        prop_assert_eq!(unbounded.mem_high_water(), total);
    }

    #[test]
    fn republish_after_death_mid_spill_serves_the_retried_bytes(
        layout in proptest::collection::vec(
            proptest::collection::vec(1usize..500, PARTITIONS..PARTITIONS + 1),
            2..5,
        ),
        victim_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let num_maps = layout.len();
        let victim = (victim_pick % num_maps as u64) as usize;
        let store = ShuffleStore::new(PARTITIONS, num_maps, 0);
        for (map, lens) in layout.iter().enumerate() {
            store.publish(map, outputs(seed, map, lens)).unwrap();
        }
        // Handles taken before the death — already spilled.
        let before: Vec<_> = (0..PARTITIONS)
            .map(|p| store.segment_when_ready(p, victim).unwrap().unwrap())
            .collect();

        // The victim's worker dies; the retried attempt republishes
        // (same data: the engine's map tasks are deterministic).
        store.publish(victim, outputs(seed, victim, &layout[victim])).unwrap();

        for (partition, handle) in before.into_iter().enumerate() {
            let expect = segment(seed, victim, partition, layout[victim][partition]);
            // The pre-death handle still reads its (identical) bytes...
            prop_assert_eq!(handle.to_vec().unwrap(), expect.clone());
            // ...and a fresh fetch serves the republished copy.
            let fresh = store.segment_when_ready(partition, victim).unwrap().unwrap();
            prop_assert_eq!(fresh.to_vec().unwrap(), expect);
        }
    }
}

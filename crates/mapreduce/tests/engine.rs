//! Engine integration tests: failure injection, determinism, key
//! semantics hooks.

use scihadoop_compress::{Codec, CompressError, IdentityCodec};
use scihadoop_mapreduce::{
    Counter, Emit, FnMapper, FnReducer, InputSplit, Job, JobConfig, KeySemantics, KvPair, MrError,
};
use std::cmp::Ordering;
use std::sync::Arc;

fn word_splits(n: u32, per_split: usize) -> Vec<InputSplit> {
    let pairs: Vec<KvPair> = (0..n)
        .map(|i| KvPair::new((i % 37).to_be_bytes().to_vec(), vec![1u8]))
        .collect();
    pairs
        .chunks(per_split)
        .map(|c| InputSplit::new(c.to_vec()))
        .collect()
}

fn identity_mapper() -> Arc<dyn scihadoop_mapreduce::Mapper> {
    Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
        out.emit(k, v)
    }))
}

fn count_reducer() -> Arc<dyn scihadoop_mapreduce::Reducer> {
    Arc::new(FnReducer(
        |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
            out.emit(k, &(values.len() as u64).to_be_bytes());
        },
    ))
}

/// A codec that corrupts its own output, so decompression at the reducer
/// must fail — the engine has to surface the error, not hang or panic.
struct SabotagedCodec;

impl Codec for SabotagedCodec {
    fn name(&self) -> &str {
        "sabotaged"
    }
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = input.to_vec();
        if let Some(b) = out.first_mut() {
            *b ^= 0xFF;
        }
        out
    }
    fn decompress(&self, _input: &[u8]) -> Result<Vec<u8>, CompressError> {
        Err(CompressError::Corrupt("sabotaged".into()))
    }
}

#[test]
fn decompression_failure_fails_the_job() {
    let result = Job::new(JobConfig::default().with_codec(Arc::new(SabotagedCodec))).run(
        word_splits(100, 25),
        identity_mapper(),
        count_reducer(),
    );
    assert!(matches!(result, Err(MrError::Codec(_))));
}

#[test]
fn byte_counters_are_deterministic_across_runs_and_parallelism() {
    let run = |map_slots: usize| {
        Job::new(
            JobConfig::default()
                .with_reducers(4)
                .with_slots(map_slots, 2),
        )
        .run(word_splits(500, 50), identity_mapper(), count_reducer())
        .unwrap()
    };
    let a = run(1);
    let b = run(8);
    for counter in [
        Counter::MapOutputBytes,
        Counter::MapOutputMaterializedBytes,
        Counter::MapOutputRecords,
        Counter::MapOutputKeyBytes,
        Counter::ReduceInputGroups,
        Counter::ReduceOutputRecords,
    ] {
        assert_eq!(
            a.counters.get(counter),
            b.counters.get(counter),
            "{counter:?} differs between 1-slot and 8-slot runs"
        );
    }
}

/// Custom comparator: sort keys in *reverse* order; outputs must follow.
struct ReverseOrder;

impl KeySemantics for ReverseOrder {
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        b.cmp(a)
    }
    // A non-bytewise comparator must ship a matching sort prefix: the
    // bitwise complement of the bytewise prefix is order-preserving for
    // reverse bytewise order.
    fn sort_prefix(&self, key: &[u8]) -> u64 {
        !scihadoop_mapreduce::bytewise_sort_prefix(key)
    }
    fn partition(&self, _key: &[u8], _parts: usize) -> usize {
        0
    }
}

#[test]
fn custom_comparator_controls_output_order() {
    let result = Job::new(
        JobConfig::default()
            .with_reducers(1)
            .with_key_semantics(Arc::new(ReverseOrder)),
    )
    .run(word_splits(200, 40), identity_mapper(), count_reducer())
    .unwrap();
    let keys: Vec<Vec<u8>> = result.outputs[0].iter().map(|p| p.key.clone()).collect();
    let mut sorted = keys.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(keys, sorted, "outputs must follow the custom comparator");
}

/// Grouping comparator: group by the first byte only.
struct PrefixGrouping;

impl KeySemantics for PrefixGrouping {
    fn partition(&self, _key: &[u8], _parts: usize) -> usize {
        0
    }
    fn group_eq(&self, a: &[u8], b: &[u8]) -> bool {
        a.first() == b.first()
    }
}

#[test]
fn grouping_comparator_merges_key_families() {
    let pairs = vec![
        KvPair::new(b"a1".to_vec(), vec![1]),
        KvPair::new(b"a2".to_vec(), vec![1]),
        KvPair::new(b"b1".to_vec(), vec![1]),
    ];
    let result = Job::new(
        JobConfig::default()
            .with_reducers(1)
            .with_key_semantics(Arc::new(PrefixGrouping)),
    )
    .run(
        vec![InputSplit::new(pairs)],
        identity_mapper(),
        count_reducer(),
    )
    .unwrap();
    assert_eq!(result.counters.get(Counter::ReduceInputGroups), 2);
    let counts: Vec<u64> = result.outputs[0]
        .iter()
        .map(|p| u64::from_be_bytes(p.value.as_slice().try_into().unwrap()))
        .collect();
    let mut sorted = counts.clone();
    sorted.sort();
    assert_eq!(sorted, vec![1, 2]);
}

#[test]
fn mapper_finish_emissions_are_processed() {
    // A buffering mapper that emits everything at finish (the §IV
    // aggregation library's pattern).
    struct BufferingMapper {
        buffered: parking_lot::Mutex<Vec<KvPair>>,
    }
    impl scihadoop_mapreduce::Mapper for BufferingMapper {
        fn map(&self, key: &[u8], value: &[u8], _out: &mut dyn Emit) {
            self.buffered
                .lock()
                .push(KvPair::new(key.to_vec(), value.to_vec()));
        }
        fn finish(&self, out: &mut dyn Emit) {
            for p in self.buffered.lock().drain(..) {
                out.emit(&p.key, &p.value);
            }
        }
    }
    let mapper = Arc::new(BufferingMapper {
        buffered: parking_lot::Mutex::new(Vec::new()),
    });
    let result = Job::new(JobConfig::default().with_slots(1, 1))
        .run(word_splits(60, 60), mapper, count_reducer())
        .unwrap();
    let total: u64 = result.outputs[0]
        .iter()
        .map(|p| u64::from_be_bytes(p.value.as_slice().try_into().unwrap()))
        .sum();
    assert_eq!(total, 60);
}

#[test]
fn zero_record_splits_are_harmless() {
    let splits = vec![InputSplit::new(vec![]), InputSplit::new(vec![])];
    let result = Job::new(JobConfig::default().with_codec(Arc::new(IdentityCodec)))
        .run(splits, identity_mapper(), count_reducer())
        .unwrap();
    assert!(result.all_outputs().is_empty());
}

/// Splits marker keys at sort time: `S<n>` becomes `A<n>` + `Z<n>` with
/// the value halved between them — the reducer's lazy sort-split flush
/// must count the extra records and re-sort the disturbed window.
struct MarkerSplit;

impl KeySemantics for MarkerSplit {
    fn partition(&self, _key: &[u8], _parts: usize) -> usize {
        0
    }
    fn sort_split(&self, records: Vec<KvPair>) -> Vec<KvPair> {
        let mut out = Vec::new();
        for r in records {
            if r.key.first() == Some(&b'S') {
                let mid = r.value.len() / 2;
                let mut a_key = r.key.clone();
                a_key[0] = b'A';
                let mut z_key = r.key;
                z_key[0] = b'Z';
                out.push(KvPair::new(a_key, r.value[..mid].to_vec()));
                out.push(KvPair::new(z_key, r.value[mid..].to_vec()));
            } else {
                out.push(r);
            }
        }
        out
    }
}

#[test]
fn sort_split_counter_tracks_split_and_clean_paths() {
    let run = |pairs: Vec<KvPair>| {
        Job::new(
            JobConfig::default()
                .with_reducers(1)
                .with_key_semantics(Arc::new(MarkerSplit)),
        )
        .run(
            vec![InputSplit::new(pairs)],
            identity_mapper(),
            count_reducer(),
        )
        .unwrap()
    };

    // No marker keys: sort_split is the identity, the flush skips its
    // re-sort, and the counter stays zero.
    let clean = run(vec![
        KvPair::new(b"B1".to_vec(), vec![1, 2]),
        KvPair::new(b"C2".to_vec(), vec![3, 4]),
    ]);
    assert_eq!(clean.counters.get(Counter::SortSplitRecords), 0);
    assert_eq!(clean.counters.get(Counter::ReduceInputGroups), 2);

    // Two marker records each split in two: two extra records counted,
    // and the pieces regroup under their new keys in sorted positions.
    let split = run(vec![
        KvPair::new(b"S1".to_vec(), vec![1, 2]),
        KvPair::new(b"B1".to_vec(), vec![5]),
        KvPair::new(b"S2".to_vec(), vec![3, 4]),
    ]);
    assert_eq!(split.counters.get(Counter::SortSplitRecords), 2);
    assert_eq!(split.counters.get(Counter::ReduceInputGroups), 5);
    let keys: Vec<&[u8]> = split.outputs[0].iter().map(|p| p.key.as_slice()).collect();
    assert_eq!(
        keys,
        vec![b"A1".as_slice(), b"A2", b"B1", b"Z1", b"Z2"],
        "split pieces must land in sorted order"
    );
}

/// Counts decompression attempts before failing them all.
struct CountingSabotage(Arc<std::sync::atomic::AtomicUsize>);

impl Codec for CountingSabotage {
    fn name(&self) -> &str {
        "counting-sabotage"
    }
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }
    fn decompress(&self, _input: &[u8]) -> Result<Vec<u8>, CompressError> {
        self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Err(CompressError::Corrupt("sabotaged".into()))
    }
}

#[test]
fn map_failure_aborts_remaining_tasks_and_keeps_all_errors() {
    // Tiny spill buffer → every map task multi-spills → its final merge
    // must decompress, which fails. With one slot, the abort flag raised
    // by the first failure must drain the queue before the other five
    // splits run: the codec is touched exactly once.
    let calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let result = Job::new(
        JobConfig::default()
            .with_slots(1, 1)
            .with_spill_buffer(64)
            .with_codec(Arc::new(CountingSabotage(calls.clone()))),
    )
    .run(word_splits(300, 50), identity_mapper(), count_reducer());
    let err = result.err().expect("job must fail");
    assert_eq!(err.task_errors().len(), 1);
    assert!(matches!(err.task_errors()[0], MrError::Codec(_)));
    assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
}

#[test]
fn multi_spill_maps_deliver_one_segment_per_reducer() {
    // A tiny spill buffer forces many spills; the final merge must leave
    // each reducer with exactly one sorted run per map, identical in
    // content to a single-spill run.
    let run = |spill_bytes: usize| {
        Job::new(
            JobConfig::default()
                .with_reducers(3)
                .with_slots(1, 1)
                .with_spill_buffer(spill_bytes),
        )
        .run(word_splits(300, 300), identity_mapper(), count_reducer())
        .unwrap()
    };
    let many_spills = run(64);
    let one_spill = run(1 << 20);
    assert!(many_spills.counters.get(Counter::Spills) > 5);
    assert_eq!(one_spill.counters.get(Counter::Spills), 1);
    // Same final answers.
    let to_map = |r: &scihadoop_mapreduce::JobResult| {
        r.all_outputs()
            .into_iter()
            .map(|p| (p.key, p.value))
            .collect::<std::collections::BTreeMap<_, _>>()
    };
    assert_eq!(to_map(&many_spills), to_map(&one_spill));
    // After the merge, materialized map output is identical: one segment
    // per (map, reducer) regardless of spill count.
    assert_eq!(
        many_spills.counters.get(Counter::MapOutputBytes),
        one_spill.counters.get(Counter::MapOutputBytes)
    );
    assert_eq!(
        many_spills
            .counters
            .get(Counter::MapOutputMaterializedBytes),
        one_spill.counters.get(Counter::MapOutputMaterializedBytes)
    );
}

//! End-to-end observability tests: a traced job must produce spans for
//! every pipeline stage, histograms that reconcile exactly with the job
//! counters, and counter snapshots that satisfy the accounting
//! invariants across codecs and key semantics.
#![cfg(feature = "obs")]

use scihadoop_compress::{Codec, DeflateCodec, IdentityCodec};
use scihadoop_mapreduce::obs::{
    chrome_trace_json, metrics_json, IntermediateBreakdown, Recorder, ALL_PHASES,
};
use scihadoop_mapreduce::record::{Emit, FnMapper, FnReducer, InputSplit, KvPair};
use scihadoop_mapreduce::{
    Counter, DefaultKeySemantics, Job, JobConfig, JobResult, KeySemantics, Phase,
};
use std::sync::Arc;

/// Key semantics that keep the engine's conservative sort-split
/// machinery engaged (sort_splits = true, everything interacts) while
/// behaving like atomic keys — exercises the windowed reduce path and
/// its SortSplit spans without needing the aggregate layer.
#[derive(Debug, Default)]
struct ConservativeKeys;

impl KeySemantics for ConservativeKeys {
    fn partition(&self, key: &[u8], parts: usize) -> usize {
        (scihadoop_mapreduce::keysem::fnv1a(key) % parts as u64) as usize
    }
}

fn wordcount_splits(n: usize, distinct: usize) -> Vec<InputSplit> {
    let words: Vec<String> = (0..n)
        .map(|i| format!("word-{:04}", i % distinct))
        .collect();
    words
        .chunks(100)
        .map(|chunk| {
            InputSplit::new(
                chunk
                    .iter()
                    .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                    .collect(),
            )
        })
        .collect()
}

fn sum_job(config: JobConfig, splits: Vec<InputSplit>) -> JobResult {
    let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
        out.emit(k, v)
    }));
    let reduce_fn = |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
        let total: u64 = values
            .iter()
            .map(|v| {
                if v.len() == 1 {
                    v[0] as u64
                } else {
                    u64::from_be_bytes((*v).try_into().unwrap())
                }
            })
            .sum();
        out.emit(k, &total.to_be_bytes());
    };
    let reducer = Arc::new(FnReducer(reduce_fn));
    Job::new(config).run(splits, mapper, reducer).unwrap()
}

/// The combiner-equipped, multi-spill wordcount config: exercises every
/// map-side stage (emit, sort/spill, combine, ifile write, spill merge).
fn traced_wordcount_config(recorder: &Recorder) -> JobConfig {
    let combiner = Arc::new(FnReducer(
        |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
            let total: u64 = values
                .iter()
                .map(|v| {
                    if v.len() == 1 {
                        v[0] as u64
                    } else {
                        u64::from_be_bytes((*v).try_into().unwrap())
                    }
                })
                .sum();
            out.emit(k, &total.to_be_bytes());
        },
    ));
    JobConfig::default()
        .with_reducers(3)
        .with_slots(2, 2)
        .with_combiner(combiner)
        .with_spill_buffer(512) // forces several spills → map-side merge
        .with_recorder(recorder.clone())
}

#[test]
fn traced_job_covers_all_phases() {
    let recorder = Recorder::new();
    // Job 1: combiner + multi-spill wordcount (map-side stages + merge).
    sum_job(
        traced_wordcount_config(&recorder),
        wordcount_splits(600, 40),
    );
    // Job 2: conservative key semantics engage the sort-split window.
    sum_job(
        JobConfig::default()
            .with_key_semantics(Arc::new(ConservativeKeys))
            .with_recorder(recorder.clone()),
        wordcount_splits(120, 10),
    );
    // Job 3: every map task fails its first attempt (cap 1) and retries
    // succeed — exercises the Retry phase deterministically.
    sum_job(
        JobConfig::default()
            .with_recorder(recorder.clone())
            .with_retries(1)
            .with_retry_backoff(std::time::Duration::from_micros(1))
            .with_faults(scihadoop_mapreduce::FaultPlan::new(
                scihadoop_mapreduce::FaultConfig {
                    seed: 1,
                    map_error_rate: 1.0,
                    attempt_cap: 1,
                    ..scihadoop_mapreduce::FaultConfig::default()
                },
            )),
        wordcount_splits(120, 10),
    );
    let trace = recorder.finish();
    for phase in ALL_PHASES {
        assert!(
            trace.span_count(phase) > 0,
            "no spans recorded for phase {:?}",
            phase
        );
    }
    // Worker threads from both jobs registered under their slot names.
    assert!(trace.threads.iter().any(|t| t.starts_with("map-slot-")));
    assert!(trace.threads.iter().any(|t| t.starts_with("reduce-slot-")));
    // Spans measured real work.
    assert!(trace.phase_wall_nanos(Phase::MapEmit) > 0);
    assert_eq!(trace.dropped_events, 0);
}

#[test]
fn histogram_breakdown_reconciles_with_counters_exactly() {
    let recorder = Recorder::new();
    let result = sum_job(
        traced_wordcount_config(&recorder),
        wordcount_splits(500, 30),
    );
    let trace = recorder.finish();
    let breakdown = IntermediateBreakdown::from_trace(&trace);
    breakdown
        .reconcile(&result.counters)
        .expect("histogram sums must equal counter values");
    assert!(breakdown.segments > 0);
    assert!(breakdown.key_fraction() > 0.5, "wordcount keys dominate");
}

#[test]
fn untraced_job_records_nothing_but_counters_still_balance() {
    let result = sum_job(JobConfig::default(), wordcount_splits(200, 20));
    assert!(result
        .counters
        .check_invariants(scihadoop_mapreduce::Framing::SequenceFile.file_overhead() as u64)
        .is_ok());
}

#[test]
fn invariants_hold_across_codecs_and_key_semantics() {
    let codecs: Vec<Arc<dyn Codec>> = vec![Arc::new(IdentityCodec), Arc::new(DeflateCodec::new())];
    let semantics: Vec<Arc<dyn KeySemantics>> =
        vec![Arc::new(DefaultKeySemantics), Arc::new(ConservativeKeys)];
    for codec in &codecs {
        for ks in &semantics {
            for combine in [false, true] {
                let mut config = JobConfig::default()
                    .with_reducers(2)
                    .with_codec(codec.clone())
                    .with_key_semantics(ks.clone())
                    .with_spill_buffer(256);
                if combine {
                    config = config.with_combiner(Arc::new(FnReducer(
                        |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
                            let total: u64 = values
                                .iter()
                                .map(|v| {
                                    if v.len() == 1 {
                                        v[0] as u64
                                    } else {
                                        u64::from_be_bytes((*v).try_into().unwrap())
                                    }
                                })
                                .sum();
                            out.emit(k, &total.to_be_bytes());
                        },
                    )));
                }
                let header = config.framing.file_overhead() as u64;
                let result = sum_job(config, wordcount_splits(300, 25));
                result
                    .counters
                    .check_invariants(header)
                    .unwrap_or_else(|e| panic!("codec={} combine={combine}: {e:?}", codec.name()));
            }
        }
    }
}

#[test]
fn exports_are_valid_and_cover_the_pipeline() {
    let recorder = Recorder::new();
    let result = sum_job(
        traced_wordcount_config(&recorder),
        wordcount_splits(400, 30),
    );
    let trace = recorder.finish();

    let chrome = chrome_trace_json(&trace);
    for phase in [Phase::MapEmit, Phase::SortSpill, Phase::Combine] {
        assert!(
            chrome.contains(&format!("\"name\": \"{}\"", phase.name())),
            "chrome trace missing {:?}",
            phase
        );
    }
    assert!(chrome.contains("map-slot-0"));

    let metrics = metrics_json(&trace, &result.counters);
    assert!(metrics.contains("\"schema\": \"scihadoop.metrics.v1\""));
    assert!(metrics.contains(&format!(
        "\"map_output_bytes\": {}",
        result.counters.get(Counter::MapOutputBytes)
    )));
    assert!(metrics.contains("\"segment_key_bytes\""));
    assert!(metrics.contains("\"intermediate_breakdown\""));
}

#[test]
fn wall_clock_fallback_warning_matches_clock_kind() {
    let recorder = Recorder::new();
    let trace = recorder.finish();
    let has_warning = trace.warnings.iter().any(|w| w.contains("thread-CPU"));
    match scihadoop_mapreduce::clock::clock_kind() {
        scihadoop_mapreduce::clock::ClockKind::ThreadCpu => {
            assert!(
                !has_warning,
                "spurious fallback warning: {:?}",
                trace.warnings
            )
        }
        scihadoop_mapreduce::clock::ClockKind::Wall => {
            assert!(has_warning, "fallback must be announced in the trace")
        }
    }
}

#[test]
fn two_traced_jobs_merge_counters_and_traces() {
    let rec_a = Recorder::new();
    let rec_b = Recorder::new();
    let a = sum_job(traced_wordcount_config(&rec_a), wordcount_splits(300, 20));
    let b = sum_job(traced_wordcount_config(&rec_b), wordcount_splits(200, 15));
    let mut trace = rec_a.finish();
    trace.merge(&rec_b.finish());
    let merged = a.counters.merge(&b.counters);
    IntermediateBreakdown::from_trace(&trace)
        .reconcile(&merged)
        .expect("merged histograms must reconcile with merged counters");
}

//! Fault-tolerance integration tests: jobs with injected faults below
//! the retry budget must complete with output *and counters* identical
//! to a clean run; faults above the budget must fail the job with the
//! retry-exhausted errors.

use scihadoop_mapreduce::record::{Emit, FnMapper, FnReducer, InputSplit, KvPair};
use scihadoop_mapreduce::{
    Counter, FaultConfig, FaultPlan, Job, JobConfig, JobResult, MrError, ALL_COUNTERS,
};
use std::sync::Arc;
use std::time::Duration;

fn splits(n: usize, distinct: usize) -> Vec<InputSplit> {
    (0..n)
        .map(|i| format!("word-{:03}", i % distinct))
        .collect::<Vec<_>>()
        .chunks(25)
        .map(|chunk| {
            InputSplit::new(
                chunk
                    .iter()
                    .map(|w| KvPair::new(w.as_bytes().to_vec(), vec![1u8]))
                    .collect(),
            )
        })
        .collect()
}

fn sum_job(config: JobConfig, n: usize, distinct: usize) -> Result<JobResult, MrError> {
    let mapper = Arc::new(FnMapper(|k: &[u8], v: &[u8], out: &mut dyn Emit| {
        out.emit(k, v)
    }));
    let reducer = Arc::new(FnReducer(
        |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
            let total: u64 = values.iter().map(|v| v[0] as u64).sum();
            out.emit(k, &total.to_be_bytes());
        },
    ));
    Job::new(config).run(splits(n, distinct), mapper, reducer)
}

fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed,
        map_error_rate: 0.4,
        reduce_error_rate: 0.3,
        corrupt_rate: 0.3,
        slow_rate: 0.2,
        slow_millis: 1,
        attempt_cap: 2,
    })
}

fn faulty_config(seed: u64) -> JobConfig {
    JobConfig::default()
        .with_reducers(3)
        .with_slots(2, 2)
        .with_retries(3) // retries >= attempt_cap guarantees completion
        .with_retry_backoff(Duration::from_micros(10))
        .with_faults(storm_plan(seed))
}

#[test]
fn faulted_job_matches_clean_run_exactly() {
    let clean = sum_job(
        JobConfig::default().with_reducers(3).with_slots(2, 2),
        200,
        23,
    )
    .expect("clean run");
    let faulted = sum_job(faulty_config(42), 200, 23).expect("faults below retry budget");

    assert_eq!(
        clean.outputs, faulted.outputs,
        "output must be byte-identical"
    );

    // Failed attempts are charged to attempt-local banks and discarded,
    // so every *semantic* counter matches the clean run; only the
    // fault-tolerance bookkeeping counters may differ.
    let bookkeeping = [
        Counter::TaskRetries,
        Counter::ChecksumFailures,
        Counter::FaultsInjected,
        Counter::CompressNanos,
        Counter::DecompressNanos,
        Counter::MapFnNanos,
        Counter::ReduceFnNanos,
        Counter::SpillNanos,
        Counter::MergeNanos,
    ];
    for c in ALL_COUNTERS {
        if bookkeeping.contains(&c) {
            continue;
        }
        assert_eq!(
            clean.counters.get(c),
            faulted.counters.get(c),
            "counter {} drifted under faults",
            c.name()
        );
    }
    assert!(
        faulted.counters.get(Counter::TaskRetries) > 0,
        "storm injected nothing"
    );
    assert!(faulted.counters.get(Counter::FaultsInjected) > 0);
}

#[test]
fn faulted_runs_are_deterministic_per_seed() {
    let a = sum_job(faulty_config(7), 150, 17).expect("seed 7");
    let b = sum_job(faulty_config(7), 150, 17).expect("seed 7 again");
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(
        a.counters.get(Counter::FaultsInjected),
        b.counters.get(Counter::FaultsInjected),
        "same seed must inject the same faults"
    );
    assert_eq!(
        a.counters.get(Counter::TaskRetries),
        b.counters.get(Counter::TaskRetries)
    );
    assert_eq!(
        a.counters.get(Counter::ChecksumFailures),
        b.counters.get(Counter::ChecksumFailures)
    );
}

#[test]
fn corruption_is_detected_and_retried() {
    // Corruption-only storm: every retry is caused by a trailer (or
    // codec) detection, so checksum failures are nonzero and the
    // ChecksumFailures <= TaskRetries invariant is meaningfully active.
    let config = JobConfig::default()
        .with_reducers(2)
        .with_retries(2)
        .with_retry_backoff(Duration::from_micros(1))
        .with_faults(FaultPlan::new(FaultConfig {
            seed: 1,
            corrupt_rate: 0.8,
            attempt_cap: 1,
            ..FaultConfig::default()
        }));
    let result = sum_job(config, 200, 19).expect("corruption below retry budget");
    assert!(
        result.counters.get(Counter::ChecksumFailures) > 0,
        "corruption storm produced no checksum failures"
    );
    assert!(
        result.counters.get(Counter::ChecksumFailures) <= result.counters.get(Counter::TaskRetries)
    );
    let clean = sum_job(JobConfig::default().with_reducers(2), 200, 19).unwrap();
    assert_eq!(clean.outputs.concat(), result.outputs.concat());
}

#[test]
fn v3_faulted_job_matches_clean_v3_run_exactly() {
    // The full storm (errors + corruption + slowdowns) over v3 block
    // segments: corrupted fetches must be caught by the segment trailer
    // or the per-block CRCs, retried, and converge on the clean output.
    use scihadoop_mapreduce::IFileVersion;
    let clean = sum_job(
        JobConfig::default()
            .with_reducers(3)
            .with_slots(2, 2)
            .with_ifile_version(IFileVersion::V3),
        200,
        23,
    )
    .expect("clean v3 run");
    let faulted = sum_job(
        faulty_config(42).with_ifile_version(IFileVersion::V3),
        200,
        23,
    )
    .expect("v3 faults below retry budget");
    assert_eq!(clean.outputs, faulted.outputs);
    assert_eq!(
        clean.counters.get(Counter::MapOutputKeySavedBytes),
        faulted.counters.get(Counter::MapOutputKeySavedBytes),
        "front-coding savings must not drift under retries"
    );
    assert_eq!(
        clean.counters.get(Counter::BlocksWritten),
        faulted.counters.get(Counter::BlocksWritten)
    );
    assert!(faulted.counters.get(Counter::TaskRetries) > 0);
    assert!(
        faulted.counters.get(Counter::ChecksumFailures) > 0,
        "corruption storm over v3 segments must trip a checksum"
    );
}

#[test]
fn faults_above_the_retry_budget_fail_the_job() {
    // Every attempt of every map task fails (cap exceeds the budget), so
    // the job must surface retry-exhausted task errors.
    let config = JobConfig::default()
        .with_retries(1)
        .with_retry_backoff(Duration::from_micros(1))
        .with_faults(FaultPlan::new(FaultConfig {
            seed: 3,
            map_error_rate: 1.0,
            attempt_cap: u32::MAX,
            ..FaultConfig::default()
        }));
    let err = match sum_job(config, 100, 11) {
        Err(e) => e,
        Ok(_) => panic!("unretryable faults must fail the job"),
    };
    for task_err in err.task_errors() {
        assert!(
            matches!(task_err, MrError::TaskFailed(msg) if msg.contains("injected map fault")),
            "unexpected error: {task_err:?}"
        );
    }
}

#[test]
fn zero_retries_preserves_fail_fast() {
    let config = JobConfig::default().with_faults(FaultPlan::new(FaultConfig {
        seed: 5,
        map_error_rate: 1.0,
        ..FaultConfig::default()
    }));
    let err = match sum_job(config, 50, 7) {
        Err(e) => e,
        Ok(_) => panic!("a job with zero retries must fail fast"),
    };
    assert!(err
        .task_errors()
        .iter()
        .all(|e| matches!(e, MrError::TaskFailed(_))));
}

#[test]
fn slow_faults_only_delay_but_never_fail() {
    let config = JobConfig::default()
        .with_reducers(2)
        .with_faults(FaultPlan::new(FaultConfig {
            seed: 9,
            slow_rate: 1.0,
            slow_millis: 1,
            ..FaultConfig::default()
        }));
    let slow = sum_job(config, 120, 13).expect("slow tasks still succeed");
    let clean = sum_job(JobConfig::default().with_reducers(2), 120, 13).unwrap();
    assert_eq!(slow.outputs, clean.outputs);
    assert_eq!(slow.counters.get(Counter::TaskRetries), 0);
    assert!(slow.counters.get(Counter::FaultsInjected) > 0);
}

#[test]
fn retried_attempts_never_double_count_records() {
    // Attempt-local counter banks are absorbed only on success: however
    // many attempts a task needs, each record is counted exactly once.
    use std::sync::atomic::{AtomicU32, Ordering};
    let calls = Arc::new(AtomicU32::new(0));
    let seen = calls.clone();
    let mapper = Arc::new(FnMapper(move |k: &[u8], v: &[u8], out: &mut dyn Emit| {
        seen.fetch_add(1, Ordering::Relaxed);
        out.emit(k, v);
    }));
    let reducer = Arc::new(FnReducer(
        |k: &[u8], values: &[&[u8]], out: &mut dyn Emit| {
            let total: u64 = values.iter().map(|v| v[0] as u64).sum();
            out.emit(k, &total.to_be_bytes());
        },
    ));
    let config = JobConfig::default()
        .with_retries(2)
        .with_retry_backoff(Duration::from_micros(1))
        .with_faults(FaultPlan::new(FaultConfig {
            seed: 13,
            map_error_rate: 0.9,
            attempt_cap: 2,
            ..FaultConfig::default()
        }));
    let result = Job::new(config)
        .run(splits(100, 9), mapper, reducer)
        .expect("attempt_cap 2 <= retries guarantees completion");
    assert_eq!(
        result.counters.get(Counter::MapInputRecords),
        100,
        "records must be counted once no matter how many attempts ran"
    );
    assert_eq!(
        calls.load(Ordering::Relaxed),
        100,
        "injected errors fire before the mapper runs, so only successful \
         attempts invoke user code"
    );
}

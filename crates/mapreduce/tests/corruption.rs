//! Corruption property suite: malformed segment bytes must surface as
//! `Err`, never as a panic — and with the CRC trailer, never as silently
//! wrong records. Runs in debug CI (overflow checks on) and under
//! `--no-default-features` (obs hooks compiled out), so the parsing
//! paths themselves are what is exercised.

use proptest::prelude::*;
use scihadoop_compress::{Codec, IdentityCodec};
use scihadoop_mapreduce::{
    DefaultKeySemantics, Framing, IFileReader, IFileWriter, MrError, RawSegment,
};
use std::sync::Arc;

/// Build a segment in any of the three on-disk formats. v3 uses a tiny
/// block budget so even small record sets span several blocks (block
/// headers, per-block CRCs, and the fence index all get corrupted bits).
fn build_segment(pairs: &[(Vec<u8>, Vec<u8>)], framing: Framing, version: u8) -> Vec<u8> {
    let codec: Arc<dyn Codec> = Arc::new(IdentityCodec);
    let mut w = match version {
        1 => IFileWriter::without_trailer(framing, codec),
        2 => IFileWriter::new(framing, codec),
        3 => IFileWriter::v3_with_budget(framing, codec, Arc::new(DefaultKeySemantics), 64),
        _ => unreachable!("version selector out of range"),
    };
    for (k, v) in pairs {
        w.append(k, v);
    }
    w.close().data
}

fn framing_of(selector: bool) -> Framing {
    if selector {
        Framing::SequenceFile
    } else {
        Framing::IFile
    }
}

/// Walk every record (format-aware: flat cursor or block decode);
/// returns `Err` on the first parse failure.
fn read_all(data: &[u8]) -> Result<usize, MrError> {
    let seg = RawSegment::open(data, &IdentityCodec)?;
    let mut n = 0usize;
    seg.for_each_record(|_k, _v| n += 1)?;
    Ok(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bit_flips_with_trailer_always_error(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..24),
             proptest::collection::vec(any::<u8>(), 0..24)),
            0..16,
        ),
        seq in any::<bool>(),
        version in 2u8..4,
        bit_frac in 0.0f64..1.0,
    ) {
        let data = build_segment(&pairs, framing_of(seq), version);
        let bit = ((data.len() as f64 * 8.0 - 1.0) * bit_frac) as usize;
        let mut corrupt = data.clone();
        corrupt[bit / 8] ^= 1u8 << (bit % 8);
        prop_assert!(
            IFileReader::open(&corrupt, &IdentityCodec).is_err(),
            "bit flip at {} undetected in {}-byte segment", bit, data.len()
        );
    }

    #[test]
    fn truncations_with_trailer_always_error(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..24),
             proptest::collection::vec(any::<u8>(), 0..24)),
            0..16,
        ),
        seq in any::<bool>(),
        version in 2u8..4,
        keep_frac in 0.0f64..1.0,
    ) {
        let data = build_segment(&pairs, framing_of(seq), version);
        let keep = ((data.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(
            IFileReader::open(&data[..keep], &IdentityCodec).is_err(),
            "truncation to {}/{} bytes undetected", keep, data.len()
        );
    }

    #[test]
    fn corrupted_untrailed_segments_never_panic(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..24),
             proptest::collection::vec(any::<u8>(), 0..24)),
            0..16,
        ),
        seq in any::<bool>(),
        truncate in any::<bool>(),
        frac in 0.0f64..1.0,
    ) {
        // Without the CRC trailer a payload flip can go undetected (that
        // is the point of the trailer); the parser's own guarantee is
        // weaker: structured failure or structurally valid records,
        // never a panic, never an out-of-bounds record.
        let data = build_segment(&pairs, framing_of(seq), 1);
        let corrupt = if truncate {
            let keep = ((data.len() - 1) as f64 * frac) as usize;
            data[..keep].to_vec()
        } else {
            let bit = ((data.len() as f64 * 8.0 - 1.0) * frac) as usize;
            let mut c = data.clone();
            c[bit / 8] ^= 1u8 << (bit % 8);
            c
        };
        if let Ok(n) = read_all(&corrupt) {
            // Parsed records can be at most... anything structurally
            // consistent; the invariant proven here is absence of panics
            // plus bounded slices (read_all walked them all).
            prop_assert!(n <= corrupt.len());
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = read_all(&data);
        // Same bytes behind a valid plain header: exercises the cursor
        // (vint decoding, record-length validation) instead of stopping
        // at the header check.
        let mut framed = vec![b'S', b'H', b'I', b'F', 1, 0];
        framed.extend_from_slice(&data);
        let _ = read_all(&framed);
        let mut framed_seq = vec![b'S', b'H', b'I', b'F', 1, 1];
        framed_seq.extend_from_slice(&data);
        let _ = read_all(&framed_seq);
        // And behind a v3 header: exercises the trailer check, fence
        // index parsing, and block decoding on garbage.
        let mut framed_v3 = vec![b'S', b'H', b'I', b'F', 3, 0];
        framed_v3.extend_from_slice(&data);
        let _ = read_all(&framed_v3);
    }

    #[test]
    fn fault_plan_corruptions_with_trailer_always_error(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..24),
             proptest::collection::vec(any::<u8>(), 0..24)),
            1..16,
        ),
        seq in any::<bool>(),
        version in 2u8..4,
        seed in any::<u64>(),
        index in 0u64..64,
    ) {
        // The fault module's own corruption shapes — exactly what the
        // runner injects at shuffle-fetch time — must always be caught
        // by the trailer.
        let plan = scihadoop_mapreduce::FaultPlan::new(scihadoop_mapreduce::FaultConfig {
            seed,
            corrupt_rate: 1.0,
            ..scihadoop_mapreduce::FaultConfig::default()
        });
        let corruption = plan.corruption(0, 0, index).expect("rate 1.0 always fires");
        let mut data = build_segment(&pairs, framing_of(seq), version);
        corruption.apply(&mut data);
        prop_assert!(
            IFileReader::open(&data, &IdentityCodec).is_err(),
            "injected {:?} undetected", corruption
        );
    }
}

//! Property tests for the obs histogram algebra.
//!
//! Per-thread sinks are merged in whatever order threads finish and
//! traces are merged in whatever order jobs ran, so `Histogram::merge`
//! must be commutative and associative with the empty histogram as
//! identity — and merging two histograms must equal recording the
//! concatenated sample streams. All four hold even under saturation:
//! the saturating sum is `min(true sum, u64::MAX)`, which is itself
//! order-independent for non-negative samples.

use proptest::prelude::*;
use scihadoop_mapreduce::obs::Histogram;

fn from_samples(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Full observable state of a histogram.
fn key(h: &Histogram) -> ([u64; 65], u64, u64, u64, u64) {
    (*h.buckets(), h.count(), h.sum(), h.min(), h.max())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative_associative_with_identity(
        a in proptest::collection::vec(any::<u64>(), 0..48),
        b in proptest::collection::vec(any::<u64>(), 0..48),
        c in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let ha = from_samples(&a);
        let hb = from_samples(&b);
        let hc = from_samples(&c);

        // Commutative: a ∪ b == b ∪ a.
        let mut ab = from_samples(&a);
        ab.merge(&hb);
        let mut ba = from_samples(&b);
        ba.merge(&ha);
        prop_assert_eq!(key(&ab), key(&ba));

        // Associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut left = from_samples(&a);
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = from_samples(&b);
        bc.merge(&hc);
        let mut right = from_samples(&a);
        right.merge(&bc);
        prop_assert_eq!(key(&left), key(&right));

        // The empty histogram is the identity.
        let mut with_id = from_samples(&a);
        with_id.merge(&Histogram::new());
        prop_assert_eq!(key(&with_id), key(&ha));

        // Merging equals recording the concatenated streams.
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(key(&ab), key(&from_samples(&concat)));
    }
}
